//! The workspace's shared JSON surface.
//!
//! [`Writer`] replaces the five hand-rolled `push_str` emitters that grew
//! up in `live`, `fleet`, `mc`, `snapshot`, and `core` — all of which
//! interpolated strings into JSON without escaping (a protocol name
//! containing `"` emitted invalid output). The writer escapes every
//! string it is handed and reproduces both existing output shapes
//! exactly: [`Style::Compact`] (`{"k":v,...}`) and [`Style::Pretty`]
//! (one-space indented, one field per line), so byte-stable deterministic
//! outputs survive the migration for escape-free inputs.
//!
//! [`parse`] is a deliberately small recursive-descent JSON reader used
//! by the schema round-trip tests and `tools/trace-check`-style
//! validation in-tree; it is not a general-purpose deserializer.

use std::fmt::Write as _;

/// Output shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Style {
    /// `{"k":v,"k2":v2}` — the deterministic/stats wire shape.
    Compact,
    /// `{\n "k": v,\n "k2": v2\n}` — the human-facing bench shape
    /// (one-space indent per level, matching the workspace's existing
    /// bench JSON).
    Pretty,
}

/// An escaping-correct JSON object writer.
pub struct Writer {
    out: String,
    style: Style,
    first: bool,
    indent: usize,
}

impl Writer {
    /// Starts a top-level object.
    pub fn object(style: Style) -> Writer {
        Writer::object_indented(style, 1)
    }

    /// Starts an object whose pretty fields sit at `indent` one-space
    /// levels (for nesting pre-rendered objects inside pretty output).
    pub fn object_indented(style: Style, indent: usize) -> Writer {
        Writer {
            out: String::from("{"),
            style,
            first: true,
            indent,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        match self.style {
            Style::Compact => {
                self.out.push('"');
                escape_into(&mut self.out, k);
                self.out.push_str("\":");
            }
            Style::Pretty => {
                self.out.push('\n');
                for _ in 0..self.indent {
                    self.out.push(' ');
                }
                self.out.push('"');
                escape_into(&mut self.out, k);
                self.out.push_str("\": ");
            }
        }
    }

    /// Writes an unsigned integer field.
    pub fn field_u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        let _ = write!(self.out, "{v}");
        self
    }

    /// Writes a `usize` field.
    pub fn field_usize(&mut self, k: &str, v: usize) -> &mut Self {
        self.field_u64(k, v as u64)
    }

    /// Writes a signed integer field.
    pub fn field_i64(&mut self, k: &str, v: i64) -> &mut Self {
        self.key(k);
        let _ = write!(self.out, "{v}");
        self
    }

    /// Writes a float field with `prec` decimal places.
    pub fn field_f64(&mut self, k: &str, v: f64, prec: usize) -> &mut Self {
        self.key(k);
        let _ = write!(self.out, "{v:.prec$}");
        self
    }

    /// Writes an escaped string field.
    pub fn field_str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.out.push('"');
        escape_into(&mut self.out, v);
        self.out.push('"');
        self
    }

    /// Writes a boolean field.
    pub fn field_bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// Writes a `null` field.
    pub fn field_null(&mut self, k: &str) -> &mut Self {
        self.key(k);
        self.out.push_str("null");
        self
    }

    /// Writes `v` as a number or `null`.
    pub fn field_opt_u64(&mut self, k: &str, v: Option<u64>) -> &mut Self {
        match v {
            Some(v) => self.field_u64(k, v),
            None => self.field_null(k),
        }
    }

    /// Writes a pre-rendered JSON value (object, array, number...) under
    /// `k`. The caller vouches that `raw` is valid JSON.
    pub fn field_raw(&mut self, k: &str, raw: &str) -> &mut Self {
        self.key(k);
        self.out.push_str(raw);
        self
    }

    /// Splices pre-rendered `"k": v[, "k2": v2...]` pairs verbatim (the
    /// escape hatch for callers assembling fragments out-of-band, e.g.
    /// `LiveStats::to_json_with`). The caller vouches for validity.
    pub fn fragment(&mut self, pairs: &str) -> &mut Self {
        if pairs.is_empty() {
            return self;
        }
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        if self.style == Style::Pretty {
            self.out.push('\n');
            for _ in 0..self.indent {
                self.out.push(' ');
            }
        }
        self.out.push_str(pairs);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        if self.style == Style::Pretty && !self.first {
            self.out.push('\n');
            for _ in 0..self.indent.saturating_sub(1) {
                self.out.push(' ');
            }
        }
        self.out.push('}');
        self.out
    }
}

/// Renders a JSON array from pre-rendered element values.
pub fn array(items: &[String]) -> String {
    let mut out = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(item);
    }
    out.push(']');
    out
}

/// Escapes `s` per RFC 8259 and appends it to `out` (no quotes added).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Returns `s` escaped (no surrounding quotes).
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(&mut out, s);
    out
}

// ---- minimal parser (for round-trip tests and in-tree validation) ------

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as u64, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// Parses one JSON document (rejecting trailing garbage).
pub fn parse(s: &str) -> Result<Value, String> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at offset {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Value::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Value::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Value::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|_| format!("bad number '{text}' at offset {start}"))
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_writer_matches_legacy_shape() {
        let mut w = Writer::object(Style::Compact);
        w.field_str("name", "ring")
            .field_u64("n", 3)
            .field_f64("rate", 0.5, 2)
            .field_bool("ok", true)
            .field_null("limit")
            .field_raw("inner", "{\"a\":1}");
        assert_eq!(
            w.finish(),
            "{\"name\":\"ring\",\"n\":3,\"rate\":0.50,\"ok\":true,\"limit\":null,\"inner\":{\"a\":1}}"
        );
    }

    #[test]
    fn pretty_writer_matches_legacy_shape() {
        let mut w = Writer::object(Style::Pretty);
        w.field_str("bench", "x").field_u64("n", 1);
        assert_eq!(w.finish(), "{\n \"bench\": \"x\",\n \"n\": 1\n}");
    }

    #[test]
    fn strings_are_escaped() {
        let mut w = Writer::object(Style::Compact);
        w.field_str("name", "quote\" back\\slash\nnl\u{1}");
        let out = w.finish();
        assert_eq!(out, "{\"name\":\"quote\\\" back\\\\slash\\nnl\\u0001\"}");
        // And it round-trips through the parser.
        let v = parse(&out).expect("escaped output parses");
        assert_eq!(
            v.get("name").and_then(Value::as_str),
            Some("quote\" back\\slash\nnl\u{1}")
        );
    }

    #[test]
    fn parser_handles_documents() {
        let v = parse("{\"a\": [1, 2.5, -3], \"b\": {\"c\": null, \"d\": true}, \"s\": \"x\"}")
            .expect("parses");
        assert_eq!(
            v.get("a").and_then(Value::as_arr).map(<[Value]>::len),
            Some(3)
        );
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Value::Null));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x"));
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("{\"a\":}").is_err());
    }

    #[test]
    fn fragment_splices_verbatim() {
        let mut w = Writer::object(Style::Pretty);
        w.field_u64("a", 1)
            .fragment("\"raw\": {\"x\": 2}")
            .field_u64("b", 3);
        let out = w.finish();
        assert_eq!(out, "{\n \"a\": 1,\n \"raw\": {\"x\": 2},\n \"b\": 3\n}");
        assert!(parse(&out).is_ok());
    }
}
