//! Per-thread event rings.
//!
//! Every recording thread owns exactly one ring: a fixed-capacity
//! `Vec<Event>` it alone writes, so the hot path is a `thread_local`
//! borrow and a slot store — no locks, no shared atomics. When the ring
//! is full the *oldest* event is overwritten (drop-oldest bounds memory
//! and keeps the most recent window, which is the one a latency
//! investigation wants) and a drop counter ticks. Rings flush into the
//! global sink when the thread exits (the `thread_local` destructor),
//! on [`flush_current`], and implicitly on `drain`.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::Event;

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

struct ThreadRing {
    tid: u64,
    buf: Vec<Event>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
    cap: usize,
}

impl ThreadRing {
    fn new() -> ThreadRing {
        let g = crate::global();
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        let name = std::thread::current()
            .name()
            .unwrap_or("unnamed")
            .to_string();
        g.threads
            .lock()
            .expect("obs threads poisoned")
            .push((tid, name));
        let cap = g.ring_capacity.load(Ordering::Relaxed).max(1);
        ThreadRing {
            tid,
            buf: Vec::with_capacity(cap.min(1024)),
            head: 0,
            dropped: 0,
            cap,
        }
    }

    fn push(&mut self, mut event: Event) {
        event.tid = self.tid;
        if self.buf.len() < self.cap {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    fn flush(&mut self) {
        let g = crate::global();
        if self.dropped > 0 {
            g.dropped.fetch_add(self.dropped, Ordering::Relaxed);
            self.dropped = 0;
        }
        if self.buf.is_empty() {
            return;
        }
        let mut sink = g.sink.lock().expect("obs sink poisoned");
        // Oldest-first: after wraparound the oldest live event is at
        // `head`, so rotate the tail segment out first.
        sink.extend_from_slice(&self.buf[self.head..]);
        sink.extend_from_slice(&self.buf[..self.head]);
        self.buf.clear();
        self.head = 0;
    }
}

impl Drop for ThreadRing {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static RING: RefCell<Option<ThreadRing>> = const { RefCell::new(None) };
}

/// Appends an event to the calling thread's ring (creating and
/// registering the ring on first use). Only called when recording is
/// enabled, so disabled runs never touch the `thread_local`.
pub(crate) fn push(event: Event) {
    let _ = RING.try_with(|cell| {
        let mut slot = cell.borrow_mut();
        slot.get_or_insert_with(ThreadRing::new).push(event);
    });
}

/// Flushes the calling thread's ring into the global sink, if it has one.
pub(crate) fn flush_current() {
    let _ = RING.try_with(|cell| {
        if let Some(ring) = cell.borrow_mut().as_mut() {
            ring.flush();
        }
    });
}

#[cfg(test)]
mod tests {
    use crate::{drain, enable_with_capacity, instant, span, EventKind};

    // Process-global recorder: the enabled-path tests must not interleave,
    // so they share one test body.
    #[test]
    fn wraparound_and_cross_thread_collection() {
        enable_with_capacity(4);
        let _ = drain(); // discard anything a prior test in this binary left

        // -- wraparound: 7 instants through a 4-slot ring keeps the last 4.
        for i in 0..7u64 {
            crate::instant_id("wrap", "test", i);
        }
        let trace = drain();
        let ids: Vec<u64> = trace
            .events
            .iter()
            .filter(|e| e.name == "wrap")
            .map(|e| e.id)
            .collect();
        assert_eq!(ids, vec![3, 4, 5, 6], "drop-oldest keeps the newest window");
        assert_eq!(trace.dropped, 3);

        // -- cross-thread: spans recorded on worker threads flush on exit
        // and land in one drain, each under its own tid.
        let workers: Vec<_> = (0..2)
            .map(|i| {
                std::thread::Builder::new()
                    .name(format!("obs-worker-{i}"))
                    .spawn(move || {
                        let g = span("worker.body", "test");
                        instant("worker.mark", "test");
                        drop(g);
                    })
                    .expect("spawn worker")
            })
            .collect();
        for w in workers {
            w.join().expect("join worker");
        }
        let trace = drain();
        let spans: Vec<_> = trace
            .events
            .iter()
            .filter(|e| e.name == "worker.body")
            .collect();
        assert_eq!(spans.len(), 2);
        assert!(spans
            .iter()
            .all(|e| matches!(e.kind, EventKind::Span { .. })));
        let tids: std::collections::BTreeSet<u64> = spans.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 2, "each worker records under its own tid");
        for tid in &tids {
            assert!(
                trace
                    .threads
                    .iter()
                    .any(|(t, name)| t == tid && name.starts_with("obs-worker-")),
                "worker tid registered with its thread name"
            );
        }
    }
}
