//! Trace exporters: chrome trace-event JSON and a compact JSONL log.
//!
//! The chrome writer emits the trace-event format's JSON-object flavor
//! (`{"traceEvents": [...], ...}`) so the file loads directly in
//! `about:tracing` or <https://ui.perfetto.dev>: complete spans as
//! `ph:"X"` with µs `ts`/`dur`, instants as `ph:"i"` (thread scope),
//! counter samples as `ph:"C"`, and one `ph:"M"` `thread_name` metadata
//! record per registered thread. Causality ids surface as `args.round`
//! (and the event's `id` field) so a whole gather→predict→install round
//! can be selected by id across node, wire, and checker tracks.
//!
//! The JSONL writer emits the same events one compact object per line —
//! grep/jq-friendly, and the input format `tools/trace-check` validates.

use std::io;
use std::path::Path;

use crate::json::{Style, Writer};
use crate::{Event, EventKind, Trace};

/// Renders `trace` as chrome trace-event JSON.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut events: Vec<String> = Vec::with_capacity(trace.events.len() + trace.threads.len());
    for (tid, name) in &trace.threads {
        let mut args = Writer::object(Style::Compact);
        args.field_str("name", name);
        let mut w = Writer::object(Style::Compact);
        w.field_str("name", "thread_name")
            .field_str("ph", "M")
            .field_u64("pid", 1)
            .field_u64("tid", *tid)
            .field_raw("args", &args.finish());
        events.push(w.finish());
    }
    for ev in &trace.events {
        events.push(chrome_event(ev));
    }
    let mut other = Writer::object(Style::Compact);
    other.field_u64("dropped_events", trace.dropped);
    let mut w = Writer::object(Style::Compact);
    w.field_raw("traceEvents", &crate::json::array(&events))
        .field_str("displayTimeUnit", "ms")
        .field_raw("otherData", &other.finish());
    w.finish()
}

fn chrome_event(ev: &Event) -> String {
    let mut w = Writer::object(Style::Compact);
    w.field_str("name", ev.name)
        .field_str("cat", ev.cat)
        .field_u64("pid", 1)
        .field_u64("tid", ev.tid)
        .field_u64("ts", ev.ts_us);
    match ev.kind {
        EventKind::Span { dur_us } => {
            w.field_str("ph", "X").field_u64("dur", dur_us);
        }
        EventKind::Instant => {
            w.field_str("ph", "i").field_str("s", "t");
        }
        EventKind::Counter { value } => {
            let mut args = Writer::object(Style::Compact);
            args.field_i64(ev.name, value);
            w.field_str("ph", "C").field_raw("args", &args.finish());
            return w.finish();
        }
    }
    if ev.id != 0 {
        let mut args = Writer::object(Style::Compact);
        args.field_u64("round", ev.id);
        w.field_str("id", &format!("{:#x}", ev.id))
            .field_raw("args", &args.finish());
    }
    w.finish()
}

/// Renders `trace` as JSONL: one compact event object per line, with a
/// leading `meta` line carrying thread names and the drop count.
pub fn jsonl(trace: &Trace) -> String {
    let mut out = String::new();
    let threads: Vec<String> = trace
        .threads
        .iter()
        .map(|(tid, name)| {
            let mut w = Writer::object(Style::Compact);
            w.field_u64("tid", *tid).field_str("name", name);
            w.finish()
        })
        .collect();
    let mut meta = Writer::object(Style::Compact);
    meta.field_str("kind", "meta")
        .field_u64("dropped", trace.dropped)
        .field_raw("threads", &crate::json::array(&threads));
    out.push_str(&meta.finish());
    out.push('\n');
    for ev in &trace.events {
        let mut w = Writer::object(Style::Compact);
        match ev.kind {
            EventKind::Span { dur_us } => {
                w.field_str("kind", "span");
                w.field_str("name", ev.name)
                    .field_str("cat", ev.cat)
                    .field_u64("ts", ev.ts_us)
                    .field_u64("tid", ev.tid)
                    .field_u64("id", ev.id)
                    .field_u64("dur", dur_us);
            }
            EventKind::Instant => {
                w.field_str("kind", "instant");
                w.field_str("name", ev.name)
                    .field_str("cat", ev.cat)
                    .field_u64("ts", ev.ts_us)
                    .field_u64("tid", ev.tid)
                    .field_u64("id", ev.id);
            }
            EventKind::Counter { value } => {
                w.field_str("kind", "counter");
                w.field_str("name", ev.name)
                    .field_str("cat", ev.cat)
                    .field_u64("ts", ev.ts_us)
                    .field_u64("tid", ev.tid)
                    .field_i64("value", value);
            }
        }
        out.push_str(&w.finish());
        out.push('\n');
    }
    out
}

/// Writes both export formats: chrome JSON at `path`, JSONL alongside it
/// with an `.jsonl` extension.
pub fn write_files(trace: &Trace, path: &Path) -> io::Result<()> {
    std::fs::write(path, chrome_trace_json(trace))?;
    std::fs::write(path.with_extension("jsonl"), jsonl(trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};

    fn sample_trace() -> Trace {
        Trace {
            events: vec![
                Event {
                    name: "node.gather",
                    cat: "live",
                    ts_us: 10,
                    tid: 1,
                    id: 0x1_0000_0007,
                    kind: EventKind::Span { dur_us: 40 },
                },
                Event {
                    name: "cache.hit",
                    cat: "cache",
                    ts_us: 20,
                    tid: 2,
                    id: 0,
                    kind: EventKind::Instant,
                },
                Event {
                    name: "reactor.wake_lag_us",
                    cat: "live",
                    ts_us: 30,
                    tid: 1,
                    id: 0,
                    kind: EventKind::Counter { value: 120 },
                },
            ],
            threads: vec![(1, "cb-reactor-0".into()), (2, "cb-checker-lane-0".into())],
            dropped: 3,
        }
    }

    #[test]
    fn chrome_schema_round_trip() {
        let trace = sample_trace();
        let doc = parse(&chrome_trace_json(&trace)).expect("chrome output is valid JSON");
        assert_eq!(
            doc.get("displayTimeUnit").and_then(Value::as_str),
            Some("ms")
        );
        assert_eq!(
            doc.get("otherData")
                .and_then(|o| o.get("dropped_events"))
                .and_then(Value::as_u64),
            Some(3)
        );
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_arr)
            .expect("traceEvents array");
        // 2 thread_name metadata records + 3 events.
        assert_eq!(events.len(), 5);
        let metas: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
            .collect();
        assert_eq!(metas.len(), 2);
        assert_eq!(
            metas[0]
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Value::as_str),
            Some("cb-reactor-0")
        );
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .expect("complete span present");
        assert_eq!(
            span.get("name").and_then(Value::as_str),
            Some("node.gather")
        );
        assert_eq!(span.get("ts").and_then(Value::as_u64), Some(10));
        assert_eq!(span.get("dur").and_then(Value::as_u64), Some(40));
        assert_eq!(
            span.get("args")
                .and_then(|a| a.get("round"))
                .and_then(Value::as_u64),
            Some(0x1_0000_0007)
        );
        let counter = events
            .iter()
            .find(|e| e.get("ph").and_then(Value::as_str) == Some("C"))
            .expect("counter present");
        assert_eq!(
            counter
                .get("args")
                .and_then(|a| a.get("reactor.wake_lag_us"))
                .and_then(Value::as_f64),
            Some(120.0)
        );
        assert!(events
            .iter()
            .any(|e| e.get("ph").and_then(Value::as_str) == Some("i")));
    }

    #[test]
    fn jsonl_lines_parse_and_cover_all_events() {
        let trace = sample_trace();
        let text = jsonl(&trace);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "meta line + one line per event");
        let meta = parse(lines[0]).expect("meta line parses");
        assert_eq!(meta.get("kind").and_then(Value::as_str), Some("meta"));
        assert_eq!(meta.get("dropped").and_then(Value::as_u64), Some(3));
        for line in &lines[1..] {
            let v = parse(line).expect("event line parses");
            assert!(v.get("kind").is_some());
            assert!(v.get("ts").is_some());
        }
        let span = parse(lines[1]).expect("span line");
        assert_eq!(span.get("id").and_then(Value::as_u64), Some(0x1_0000_0007));
        assert_eq!(span.get("dur").and_then(Value::as_u64), Some(40));
    }
}
