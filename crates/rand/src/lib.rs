//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the (small) subset of the rand 0.8 API the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` — backed
//! by SplitMix64. All consumers seed explicitly, so the only contract that
//! matters is *determinism per seed*, which holds here just as it does for
//! the real crate (though the streams differ, so seeds tuned against real
//! `rand` may need re-tuning).
//!
//! Not cryptographically secure; not a general-purpose RNG. Replace with
//! the real crate if the environment ever gains registry access.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    pub use crate::StdRng;
}

/// Seedable RNG constructor (the one construction path the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value sampleable from the RNG's full-range output (the `Standard`
/// distribution of real rand).
pub trait Sample {
    /// Draws one value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Sample for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range that can produce a uniform sample (the `SampleRange` of real
/// rand, minus the unused corners).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, matching real rand.
    fn sample_in<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_ranges!(u64, usize, u32, u16, u8, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_in<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_in<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// The user-facing sampling interface.
pub trait Rng: Sized {
    /// The raw 64-bit output stream.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of `T` from its natural full-range distribution
    /// (`f64` in [0,1), integers over their full range).
    fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_in(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

/// The workspace's standard RNG: SplitMix64. Small state, passes BigCrush
/// on its 64-bit output, and — the property everything here relies on —
/// replays bit-identically from a seed.
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // One warm-up step decorrelates small/sequential seeds.
        let mut rng = StdRng {
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        };
        let _ = rng.next_u64();
        rng
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let a = r.gen_range(3u64..10);
            assert!((3..10).contains(&a));
            let b = r.gen_range(0usize..=4);
            assert!(b <= 4);
            let c = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&c));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "got {hits}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(4);
        let _ = r.gen_range(5u64..5);
    }

    #[test]
    fn uniformity_rough_check() {
        let mut r = StdRng::seed_from_u64(5);
        let mut buckets = [0usize; 10];
        for _ in 0..100_000 {
            buckets[r.gen_range(0usize..10)] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((9_000..11_000).contains(&b), "bucket {i}: {b}");
        }
    }
}
