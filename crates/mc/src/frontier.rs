//! Exploration frontiers and the concurrent explored-set.
//!
//! The search engines share three building blocks:
//!
//! * [`Frontier`] — the queue discipline that decides which reached state
//!   is expanded next. The sequential engine uses [`FifoFrontier`] (plain
//!   BFS, the order of Fig. 5/Fig. 8); the parallel engine processes one
//!   BFS level at a time and distributes it over [`StealQueues`].
//! * [`ShardedExplored`] — the `explored` set of Fig. 5, split into
//!   mutex-guarded shards keyed by state hash so that many workers can
//!   insert concurrently without a global lock. Exactly one inserter wins
//!   any given hash, which is what guarantees a state is never expanded
//!   twice no matter how threads race.
//! * [`StealQueues`] — per-worker deques of work-item indices with
//!   work stealing: a worker drains its own deque from the front and, when
//!   empty, steals from the back of a sibling, so stragglers with cheap
//!   items finish the level instead of idling.

use std::collections::{HashSet, VecDeque};
use std::sync::Mutex;

use cb_model::{GlobalState, Protocol};

/// One reached-but-unexpanded state: the payload queued on a frontier.
pub struct FrontierItem<P: Protocol> {
    /// The reached global state.
    pub state: GlobalState<P>,
    /// Arena index of the edge that reached it (`None` for the start state).
    pub rec: Option<usize>,
    /// Path length from the start state.
    pub depth: usize,
}

/// The order in which reached states are expanded.
pub trait Frontier<P: Protocol> {
    /// Queues a newly reached state.
    fn push(&mut self, item: FrontierItem<P>);
    /// Takes the next state to expand, or `None` when exploration is done.
    fn pop(&mut self) -> Option<FrontierItem<P>>;
    /// Number of states waiting for expansion.
    fn len(&self) -> usize;
    /// True if nothing is waiting.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// First-in-first-out frontier: breadth-first order, the discipline of
/// Fig. 5 and Fig. 8. Expansion order doubles as the *canonical* order —
/// the parallel engine reproduces exactly the violation set and paths this
/// order yields.
#[derive(Default)]
pub struct FifoFrontier<P: Protocol> {
    items: VecDeque<FrontierItem<P>>,
}

impl<P: Protocol> FifoFrontier<P> {
    /// An empty frontier.
    pub fn new() -> Self {
        FifoFrontier {
            items: VecDeque::new(),
        }
    }
}

impl<P: Protocol> Frontier<P> for FifoFrontier<P> {
    fn push(&mut self, item: FrontierItem<P>) {
        self.items.push_back(item);
    }
    fn pop(&mut self) -> Option<FrontierItem<P>> {
        self.items.pop_front()
    }
    fn len(&self) -> usize {
        self.items.len()
    }
}

/// The `explored` hash set, sharded for concurrent insertion.
///
/// Shard choice mixes the hash once more so that structured state hashes
/// still spread evenly. Every operation touches exactly one shard, so
/// throughput scales with the shard count until the memory bus saturates.
pub struct ShardedExplored {
    shards: Box<[Mutex<HashSet<u64>>]>,
    mask: u64,
}

impl ShardedExplored {
    /// Creates a set with at least `shards` shards (rounded up to a power
    /// of two).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        ShardedExplored {
            shards: (0..n).map(|_| Mutex::new(HashSet::new())).collect(),
            mask: (n - 1) as u64,
        }
    }

    fn shard(&self, h: u64) -> &Mutex<HashSet<u64>> {
        // Fibonacci mixing decorrelates shard choice from set-bucket choice.
        let ix = (h.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) & self.mask;
        &self.shards[ix as usize]
    }

    /// Inserts `h`; returns true iff it was not present. Exactly one of
    /// any set of concurrent inserters of the same hash gets `true`.
    pub fn insert(&self, h: u64) -> bool {
        self.shard(h)
            .lock()
            .expect("explored shard poisoned")
            .insert(h)
    }

    /// True if `h` has been inserted.
    pub fn contains(&self, h: u64) -> bool {
        self.shard(h)
            .lock()
            .expect("explored shard poisoned")
            .contains(&h)
    }

    /// Total number of distinct hashes inserted.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("explored shard poisoned").len())
            .sum()
    }

    /// True if nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-worker work queues with stealing, distributing indices `0..n`.
pub struct StealQueues {
    queues: Vec<Mutex<VecDeque<usize>>>,
}

impl StealQueues {
    /// Splits `0..n` into `workers` contiguous chunks (locality within a
    /// worker, stealing across workers when load skews).
    pub fn split(workers: usize, n: usize) -> Self {
        let workers = workers.max(1);
        let mut queues: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        let chunk = n.div_ceil(workers).max(1);
        for i in 0..n {
            queues[(i / chunk).min(workers - 1)].push_back(i);
        }
        StealQueues {
            queues: queues.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Next index for worker `w`: its own queue front first, then a steal
    /// from the back of the first non-empty sibling.
    pub fn next(&self, w: usize) -> Option<usize> {
        if let Some(i) = self.queues[w]
            .lock()
            .expect("work queue poisoned")
            .pop_front()
        {
            return Some(i);
        }
        let n = self.queues.len();
        for off in 1..n {
            let victim = (w + off) % n;
            if let Some(i) = self.queues[victim]
                .lock()
                .expect("work queue poisoned")
                .pop_back()
            {
                return Some(i);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_model::testproto::Ping;
    use cb_model::NodeId;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_frontier_is_fifo() {
        let cfg = Ping {
            kick_target: NodeId(0),
            kick_enabled: false,
        };
        let gs = GlobalState::init(&cfg, [NodeId(0)]);
        let mut f: FifoFrontier<Ping> = FifoFrontier::new();
        assert!(f.is_empty());
        for depth in 0..4 {
            f.push(FrontierItem {
                state: gs.clone(),
                rec: None,
                depth,
            });
        }
        assert_eq!(f.len(), 4);
        for depth in 0..4 {
            assert_eq!(f.pop().expect("item").depth, depth);
        }
        assert!(f.pop().is_none());
    }

    #[test]
    fn sharded_set_basic() {
        let s = ShardedExplored::new(8);
        assert!(s.is_empty());
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.contains(7));
        assert!(!s.contains(8));
        assert!(s.insert(8));
        assert_eq!(s.len(), 2);
    }

    /// The property the parallel engine's correctness rests on: under
    /// concurrent insertion of overlapping hash streams, every hash is won
    /// by exactly one inserter — a state can never be expanded twice.
    #[test]
    fn sharded_set_never_double_admits_under_concurrency() {
        let set = ShardedExplored::new(16);
        let wins = AtomicUsize::new(0);
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let set = &set;
                let wins = &wins;
                s.spawn(move || {
                    // Every thread tries the same hash universe, shifted so
                    // contention patterns differ per thread.
                    for k in 0..per_thread {
                        let h = (k + t * 37) % per_thread;
                        if set.insert(h) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(
            wins.load(Ordering::Relaxed),
            per_thread as usize,
            "each hash admitted exactly once across {threads} racing threads"
        );
        assert_eq!(set.len(), per_thread as usize);
    }

    #[test]
    fn steal_queues_cover_all_work_exactly_once() {
        let q = StealQueues::split(4, 103);
        let seen = Mutex::new(vec![0usize; 103]);
        std::thread::scope(|s| {
            for w in 0..4 {
                let q = &q;
                let seen = &seen;
                s.spawn(move || {
                    while let Some(i) = q.next(w) {
                        seen.lock().unwrap()[i] += 1;
                    }
                });
            }
        });
        assert!(seen.lock().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn steal_queues_let_idle_workers_steal() {
        // All work lands in worker 0's chunk range when n < workers.
        let q = StealQueues::split(8, 3);
        // Worker 7 owns nothing but can still obtain work.
        assert!(q.next(7).is_some());
        assert!(q.next(7).is_some());
        assert!(q.next(7).is_some());
        assert!(q.next(0).is_none());
    }
}
