//! Exploration frontiers and the concurrent explored-set.
//!
//! The search engines share three building blocks:
//!
//! * [`Frontier`] — the queue discipline that decides which reached state
//!   is expanded next. The sequential engine uses [`FifoFrontier`] (plain
//!   BFS, the order of Fig. 5/Fig. 8); the parallel engine processes one
//!   BFS level at a time and distributes it over per-job pool tasks.
//! * [`LockFreeExplored`] — the `explored` set of Fig. 5 as a lock-free
//!   open-addressing hash table: CAS-published entries over pre-sized
//!   segment arrays, growable by chaining larger segments. Exactly one
//!   inserter wins any given hash, which is what guarantees a state is
//!   never expanded twice no matter how threads race; each entry also
//!   carries the BFS level it was admitted at, which is what lets the
//!   streamed merge classify a lost insert race as "duplicate of an
//!   earlier level" vs "admitted this level by a non-canonical edge"
//!   without buffering the whole level.
//! * [`StealQueues`] — per-worker deques of work-item indices with
//!   work stealing: a worker drains its own deque from the front and, when
//!   empty, steals from the back of a sibling, so stragglers with cheap
//!   items finish a phase instead of idling.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use cb_model::{GlobalState, Protocol};

/// One reached-but-unexpanded state: the payload queued on a frontier.
pub struct FrontierItem<P: Protocol> {
    /// The reached global state.
    pub state: GlobalState<P>,
    /// Arena index of the edge that reached it (`None` for the start state).
    pub rec: Option<usize>,
    /// Path length from the start state.
    pub depth: usize,
}

/// The order in which reached states are expanded.
pub trait Frontier<P: Protocol> {
    /// Queues a newly reached state.
    fn push(&mut self, item: FrontierItem<P>);
    /// Takes the next state to expand, or `None` when exploration is done.
    fn pop(&mut self) -> Option<FrontierItem<P>>;
    /// Number of states waiting for expansion.
    fn len(&self) -> usize;
    /// True if nothing is waiting.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// First-in-first-out frontier: breadth-first order, the discipline of
/// Fig. 5 and Fig. 8. Expansion order doubles as the *canonical* order —
/// the parallel engine reproduces exactly the violation set and paths this
/// order yields.
#[derive(Default)]
pub struct FifoFrontier<P: Protocol> {
    items: VecDeque<FrontierItem<P>>,
}

impl<P: Protocol> FifoFrontier<P> {
    /// An empty frontier.
    pub fn new() -> Self {
        FifoFrontier {
            items: VecDeque::new(),
        }
    }
}

impl<P: Protocol> Frontier<P> for FifoFrontier<P> {
    fn push(&mut self, item: FrontierItem<P>) {
        self.items.push_back(item);
    }
    fn pop(&mut self) -> Option<FrontierItem<P>> {
        self.items.pop_front()
    }
    fn len(&self) -> usize {
        self.items.len()
    }
}

/// Outcome of a leveled insert into [`LockFreeExplored`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// The hash was absent; this caller admitted it.
    Fresh,
    /// The hash was already present, admitted at the recorded level.
    Seen {
        /// The level the winning insert carried.
        level: u64,
    },
}

/// Empty-slot sentinel. State hashes equal to zero are remapped (see
/// [`LockFreeExplored::normalize`]); the remap merges hash `0` with one
/// fixed 64-bit constant, the same collision class the hash-compressed
/// explored set already accepts everywhere.
const EMPTY: u64 = 0;

/// Substitute key for hash 0 (an arbitrary odd constant).
const ZERO_SUB: u64 = 0xd6e8_feb8_6659_fd93;

/// Max slots probed (linearly) in one segment before chaining to the next.
/// The probe sequence per (key, segment) is deterministic, and an inserter
/// never skips an empty slot without CAS-claiming it — together these make
/// the segment-overflow decision race-free (see `insert_in`).
const PROBE_WINDOW: usize = 64;

/// Hard cap on chained segments. Capacities double per segment, so with
/// the smallest initial capacity this still covers > 2^40 entries.
const MAX_SEGMENTS: usize = 36;

/// One slot: the CAS-published key and its level stamp, adjacent so a
/// probe touches one cache line. `level` is written *before* the key CAS
/// and read only after an acquire-load of the key observed the published
/// hash.
struct Slot {
    key: AtomicU64,
    level: AtomicU64,
}

/// One fixed-capacity open-addressing array.
struct Segment {
    slots: Box<[Slot]>,
    mask: usize,
}

impl Segment {
    fn new(cap: usize) -> Box<Segment> {
        debug_assert!(cap.is_power_of_two());
        Box::new(Segment {
            slots: (0..cap)
                .map(|_| Slot {
                    key: AtomicU64::new(EMPTY),
                    level: AtomicU64::new(0),
                })
                .collect(),
            mask: cap - 1,
        })
    }
}

/// What one segment said about a key.
enum SegOutcome {
    Inserted,
    Present {
        level: u64,
    },
    /// Every slot in the key's probe window is occupied by other keys.
    Full,
}

/// The `explored` hash set, lock-free.
///
/// Open-addressing segments of atomic slots; an insert is a single CAS on
/// the common path. When a key's probe window in every published segment
/// is full, the inserter publishes a new segment of twice the capacity
/// (CAS on the segment pointer, so concurrent growers agree) and inserts
/// there. Entries are never removed and segments are never freed before
/// drop, so no epochs or hazard pointers are needed.
///
/// Each entry carries a caller-supplied *level* stamp
/// ([`LockFreeExplored::insert_leveled`]). Membership (who wins an insert
/// race) is decided by the key CAS alone and holds unconditionally; the
/// stamp read back by losers is exact under the discipline the parallel
/// engine obeys — all concurrent inserters pass the same level, and level
/// changes are separated by a happens-before barrier (the engine's
/// per-level phase boundary). Stamps from different levels never race.
pub struct LockFreeExplored {
    segments: [AtomicPtr<Segment>; MAX_SEGMENTS],
    len: AtomicUsize,
}

impl LockFreeExplored {
    /// Creates a set with the default initial capacity (4096 slots).
    pub fn new() -> Self {
        Self::with_capacity(1 << 12)
    }

    /// Creates a set whose first segment holds at least `cap` slots
    /// (rounded up to a power of two, min 16). Smaller first segments
    /// chain earlier — useful to exercise the growth path in tests.
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.max(16).next_power_of_two();
        let set = LockFreeExplored {
            segments: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            len: AtomicUsize::new(0),
        };
        set.segments[0].store(Box::into_raw(Segment::new(cap)), Ordering::Release);
        set
    }

    /// Remaps the empty-slot sentinel to a fixed substitute key.
    fn normalize(h: u64) -> u64 {
        if h == EMPTY {
            ZERO_SUB
        } else {
            h
        }
    }

    /// Deterministic probe start (Fibonacci mixing decorrelates the probe
    /// start from raw structured hashes).
    fn probe_start(key: u64, mask: usize) -> usize {
        ((key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize) & mask
    }

    /// Inserts `key` into one segment, or reports it present or the
    /// window full. Linear probing over a deterministic window; an empty
    /// slot is always CAS-claimed, never skipped, so two racers for the
    /// same key can never split across segments: if one racer observes
    /// the window full, every slot it saw is occupied forever — the other
    /// racer's key cannot be (or land) among them unnoticed.
    fn insert_in(seg: &Segment, key: u64, level: u64) -> SegOutcome {
        let mut i = Self::probe_start(key, seg.mask);
        for _ in 0..PROBE_WINDOW.min(seg.slots.len()) {
            let slot = &seg.slots[i];
            let cur = slot.key.load(Ordering::Acquire);
            if cur == key {
                return SegOutcome::Present {
                    level: slot.level.load(Ordering::Relaxed),
                };
            }
            if cur == EMPTY {
                // Publish the stamp first: the key CAS below releases it,
                // so any acquire-load that observes the key sees the
                // stamp. A racer for a *different* key may overwrite this
                // store before our CAS; under the same-level-per-phase
                // discipline both wrote the same value.
                slot.level.store(level, Ordering::Relaxed);
                match slot
                    .key
                    .compare_exchange(EMPTY, key, Ordering::AcqRel, Ordering::Acquire)
                {
                    Ok(_) => return SegOutcome::Inserted,
                    Err(found) if found == key => {
                        return SegOutcome::Present {
                            level: slot.level.load(Ordering::Relaxed),
                        }
                    }
                    Err(_) => {} // another key claimed it; keep probing
                }
            }
            i = (i + 1) & seg.mask;
        }
        SegOutcome::Full
    }

    /// Looks `key` up in one segment. The first empty slot in the window
    /// proves absence from this *and all later* segments: inserts claim
    /// the first empty slot of their window and only chain when the whole
    /// window was full, and occupied slots never empty again.
    fn find_in(seg: &Segment, key: u64) -> Option<bool> {
        let mut i = Self::probe_start(key, seg.mask);
        for _ in 0..PROBE_WINDOW.min(seg.slots.len()) {
            match seg.slots[i].key.load(Ordering::Acquire) {
                k if k == key => return Some(true),
                EMPTY => return Some(false),
                _ => i = (i + 1) & seg.mask,
            }
        }
        None // window full of other keys: the key may live in a later segment
    }

    /// The published segment at `ix`, if any.
    fn segment(&self, ix: usize) -> Option<&Segment> {
        let p = self.segments[ix].load(Ordering::Acquire);
        if p.is_null() {
            None
        } else {
            // SAFETY: published segments are never freed before &self drops.
            Some(unsafe { &*p })
        }
    }

    /// Publishes (or adopts a racer's) segment at `ix`, doubling the
    /// previous capacity.
    fn grow(&self, ix: usize, prev_cap: usize) -> &Segment {
        assert!(ix < MAX_SEGMENTS, "explored set exceeded segment cap");
        let fresh = Box::into_raw(Segment::new(prev_cap * 2));
        match self.segments[ix].compare_exchange(
            std::ptr::null_mut(),
            fresh,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            // SAFETY: just published; never freed before &self drops.
            Ok(_) => unsafe { &*fresh },
            Err(winner) => {
                // SAFETY: we own `fresh` (the CAS rejected it).
                drop(unsafe { Box::from_raw(fresh) });
                // SAFETY: the winner's pointer is published and live.
                unsafe { &*winner }
            }
        }
    }

    /// Inserts `h` stamped with `level`; returns [`Admission::Fresh`] iff
    /// it was not present. Exactly one of any set of concurrent inserters
    /// of the same hash gets `Fresh`. All concurrent callers must pass
    /// the same `level` (see the type docs) for losers' stamp readbacks
    /// to be exact; membership does not depend on it.
    pub fn insert_leveled(&self, h: u64, level: u64) -> Admission {
        let key = Self::normalize(h);
        let mut ix = 0;
        loop {
            let seg = match self.segment(ix) {
                Some(seg) => seg,
                None => {
                    let prev = self.segment(ix - 1).expect("previous segment exists");
                    self.grow(ix, seg_cap(prev))
                }
            };
            match Self::insert_in(seg, key, level) {
                SegOutcome::Inserted => {
                    self.len.fetch_add(1, Ordering::Relaxed);
                    return Admission::Fresh;
                }
                SegOutcome::Present { level } => return Admission::Seen { level },
                SegOutcome::Full => ix += 1,
            }
        }
    }

    /// Inserts `h` (stamp 0); returns true iff it was not present.
    pub fn insert(&self, h: u64) -> bool {
        matches!(self.insert_leveled(h, 0), Admission::Fresh)
    }

    /// True if `h` has been inserted.
    pub fn contains(&self, h: u64) -> bool {
        let key = Self::normalize(h);
        let mut ix = 0;
        while let Some(seg) = self.segment(ix) {
            match Self::find_in(seg, key) {
                Some(found) => return found,
                None => ix += 1,
            }
        }
        false
    }

    /// Total number of distinct hashes inserted.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// True if nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of published segments (growth observability for tests).
    pub fn segment_count(&self) -> usize {
        (0..MAX_SEGMENTS)
            .take_while(|&ix| self.segment(ix).is_some())
            .count()
    }
}

fn seg_cap(seg: &Segment) -> usize {
    seg.mask + 1
}

impl Default for LockFreeExplored {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for LockFreeExplored {
    fn drop(&mut self) {
        for slot in &self.segments {
            let p = slot.load(Ordering::Acquire);
            if !p.is_null() {
                // SAFETY: exclusively owned in drop; published via Box::into_raw.
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

// SAFETY: all interior state is atomic; segments are published once and
// immutable in shape thereafter.
unsafe impl Send for LockFreeExplored {}
unsafe impl Sync for LockFreeExplored {}

/// Per-worker work queues with stealing, distributing indices `0..n`.
pub struct StealQueues {
    queues: Vec<Mutex<VecDeque<usize>>>,
}

impl StealQueues {
    /// Splits `0..n` into `workers` contiguous chunks (locality within a
    /// worker, stealing across workers when load skews).
    pub fn split(workers: usize, n: usize) -> Self {
        let workers = workers.max(1);
        let mut queues: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        let chunk = n.div_ceil(workers).max(1);
        for i in 0..n {
            queues[(i / chunk).min(workers - 1)].push_back(i);
        }
        StealQueues {
            queues: queues.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Next index for worker `w`: its own queue front first, then a steal
    /// from the back of the first non-empty sibling.
    pub fn next(&self, w: usize) -> Option<usize> {
        if let Some(i) = self.queues[w]
            .lock()
            .expect("work queue poisoned")
            .pop_front()
        {
            return Some(i);
        }
        let n = self.queues.len();
        for off in 1..n {
            let victim = (w + off) % n;
            if let Some(i) = self.queues[victim]
                .lock()
                .expect("work queue poisoned")
                .pop_back()
            {
                return Some(i);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::WorkerPool;
    use cb_model::testproto::Ping;
    use cb_model::NodeId;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_frontier_is_fifo() {
        let cfg = Ping {
            kick_target: NodeId(0),
            kick_enabled: false,
        };
        let gs = GlobalState::init(&cfg, [NodeId(0)]);
        let mut f: FifoFrontier<Ping> = FifoFrontier::new();
        assert!(f.is_empty());
        for depth in 0..4 {
            f.push(FrontierItem {
                state: gs.clone(),
                rec: None,
                depth,
            });
        }
        assert_eq!(f.len(), 4);
        for depth in 0..4 {
            assert_eq!(f.pop().expect("item").depth, depth);
        }
        assert!(f.pop().is_none());
    }

    #[test]
    fn lock_free_set_basic() {
        let s = LockFreeExplored::new();
        assert!(s.is_empty());
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.contains(7));
        assert!(!s.contains(8));
        assert!(s.insert(8));
        assert_eq!(s.len(), 2);
        assert_eq!(s.segment_count(), 1);
    }

    #[test]
    fn zero_hash_is_a_valid_member() {
        let s = LockFreeExplored::new();
        assert!(!s.contains(0));
        assert!(s.insert(0));
        assert!(!s.insert(0));
        assert!(s.contains(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn level_stamps_record_the_admitting_level() {
        let s = LockFreeExplored::new();
        assert_eq!(s.insert_leveled(42, 3), Admission::Fresh);
        assert_eq!(s.insert_leveled(42, 5), Admission::Seen { level: 3 });
        assert_eq!(s.insert_leveled(42, 3), Admission::Seen { level: 3 });
        assert_eq!(s.insert_leveled(43, 5), Admission::Fresh);
        assert_eq!(s.insert_leveled(43, 9), Admission::Seen { level: 5 });
    }

    #[test]
    fn growth_chains_segments_and_keeps_set_semantics() {
        // A first segment of 16 slots with a 64-slot probe window fills
        // fast; 10_000 keys force several chained segments.
        let s = LockFreeExplored::with_capacity(16);
        for k in 0..10_000u64 {
            assert!(s.insert(k.wrapping_mul(0x2545_f491_4f6c_dd1d)));
        }
        assert!(s.segment_count() > 1, "growth path exercised");
        assert_eq!(s.len(), 10_000);
        for k in 0..10_000u64 {
            let h = k.wrapping_mul(0x2545_f491_4f6c_dd1d);
            assert!(s.contains(h));
            assert!(!s.insert(h), "re-insert after growth stays a duplicate");
        }
        assert!(!s.contains(0xdead_beef));
    }

    /// The property the parallel engine's correctness rests on: under
    /// concurrent insertion of overlapping hash streams, every hash is won
    /// by exactly one inserter — a state can never be expanded twice.
    #[test]
    fn never_double_admits_under_concurrency() {
        let set = LockFreeExplored::new();
        let wins = AtomicUsize::new(0);
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let set = &set;
                let wins = &wins;
                s.spawn(move || {
                    // Every thread tries the same hash universe, shifted so
                    // contention patterns differ per thread.
                    for k in 0..per_thread {
                        let h = (k + t * 37) % per_thread;
                        if set.insert(h) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(
            wins.load(Ordering::Relaxed),
            per_thread as usize,
            "each hash admitted exactly once across {threads} racing threads"
        );
        assert_eq!(set.len(), per_thread as usize);
    }

    /// The same exactly-once property hammered from `WorkerPool` workers —
    /// the threads the real expand phase runs on — through the
    /// growth/segment-chain path, checked against a reference `HashSet`.
    #[test]
    fn pool_workers_agree_with_reference_set_through_growth() {
        let pool = WorkerPool::new(4);
        let set = LockFreeExplored::with_capacity(32);
        let workers = 6;
        let per_worker = 8_000usize;
        // Overlapping pseudo-random streams: ~half of each worker's keys
        // collide with a sibling's.
        let key = |w: usize, k: usize| -> u64 {
            let shared = k.is_multiple_of(2);
            let x = if shared {
                k as u64
            } else {
                (w * 1_000_000 + k) as u64
            };
            x.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (x >> 7)
        };
        let wins: Vec<Mutex<Vec<u64>>> = (0..workers).map(|_| Mutex::new(Vec::new())).collect();
        pool.scope(|s| {
            for w in 0..workers {
                let set = &set;
                let wins = &wins;
                let key = &key;
                s.spawn(move || {
                    let mut mine = Vec::new();
                    for k in 0..per_worker {
                        let h = key(w, k);
                        if set.insert_leveled(h, 1) == Admission::Fresh {
                            mine.push(h);
                        }
                    }
                    *wins[w].lock().unwrap() = mine;
                });
            }
        });
        let mut reference: HashSet<u64> = HashSet::new();
        for w in 0..workers {
            for k in 0..per_worker {
                reference.insert(LockFreeExplored::normalize(key(w, k)));
            }
        }
        let mut won: Vec<u64> = Vec::new();
        for w in wins {
            won.extend(w.into_inner().unwrap());
        }
        let distinct_wins: HashSet<u64> = won
            .iter()
            .map(|&h| LockFreeExplored::normalize(h))
            .collect();
        assert_eq!(
            won.len(),
            distinct_wins.len(),
            "no hash was admitted twice across racing pool workers"
        );
        assert_eq!(distinct_wins, reference, "wins cover exactly the universe");
        assert_eq!(set.len(), reference.len());
        assert!(set.segment_count() > 1, "contention crossed segment chains");
        for &h in &reference {
            assert!(set.contains(h));
            assert_eq!(set.insert_leveled(h, 9), Admission::Seen { level: 1 });
        }
    }

    #[test]
    fn steal_queues_cover_all_work_exactly_once() {
        let q = StealQueues::split(4, 103);
        let seen = Mutex::new(vec![0usize; 103]);
        std::thread::scope(|s| {
            for w in 0..4 {
                let q = &q;
                let seen = &seen;
                s.spawn(move || {
                    while let Some(i) = q.next(w) {
                        seen.lock().unwrap()[i] += 1;
                    }
                });
            }
        });
        assert!(seen.lock().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn steal_queues_let_idle_workers_steal() {
        // All work lands in worker 0's chunk range when n < workers.
        let q = StealQueues::split(8, 3);
        // Worker 7 owns nothing but can still obtain work.
        assert!(q.next(7).is_some());
        assert!(q.next(7).is_some());
        assert!(q.next(7).is_some());
        assert!(q.next(0).is_none());
    }
}
