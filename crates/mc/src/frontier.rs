//! Exploration frontiers and the concurrent explored-set.
//!
//! The search engines share three building blocks:
//!
//! * [`Frontier`] — the queue discipline that decides which reached state
//!   is expanded next. The sequential engine uses [`FifoFrontier`] (plain
//!   BFS, the order of Fig. 5/Fig. 8); the parallel engine processes one
//!   BFS level at a time and distributes it over per-job pool tasks.
//! * [`LockFreeExplored`] — the `explored` set of Fig. 5 as a lock-free
//!   open-addressing hash table: CAS-published entries over pre-sized
//!   segment arrays, growable by chaining larger segments. Exactly one
//!   inserter wins any given hash, which is what guarantees a state is
//!   never expanded twice no matter how threads race; each entry also
//!   carries the BFS level it was admitted at, which is what lets the
//!   streamed merge classify a lost insert race as "duplicate of an
//!   earlier level" vs "admitted this level by a non-canonical edge"
//!   without buffering the whole level. Two optional tiers trade exactness
//!   of representation for capacity: a *compacted* slot layout packs
//!   fingerprint and level into a single word ([`LockFreeExplored::
//!   with_options`]), and a *spill* tier moves quiescent entries into a
//!   sorted on-disk run ([`LockFreeExplored::spill_to_disk`]) so the
//!   resident footprint stays bounded while `max_states` grows.
//!   [`ExploredBatch`] amortizes the synchronization cost of a burst of
//!   inserts from one task.
//! * [`StealQueues`] — per-worker deques of work-item indices with
//!   work stealing: a worker drains its own deque from the front and, when
//!   empty, steals from the back of a sibling, so stragglers with cheap
//!   items finish a phase instead of idling.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use cb_model::{GlobalState, Protocol};

/// One reached-but-unexpanded state: the payload queued on a frontier.
pub struct FrontierItem<P: Protocol> {
    /// The reached global state.
    pub state: GlobalState<P>,
    /// Arena index of the edge that reached it (`None` for the start state).
    pub rec: Option<usize>,
    /// Path length from the start state.
    pub depth: usize,
}

/// The order in which reached states are expanded.
pub trait Frontier<P: Protocol> {
    /// Queues a newly reached state.
    fn push(&mut self, item: FrontierItem<P>);
    /// Takes the next state to expand, or `None` when exploration is done.
    fn pop(&mut self) -> Option<FrontierItem<P>>;
    /// Number of states waiting for expansion.
    fn len(&self) -> usize;
    /// True if nothing is waiting.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// First-in-first-out frontier: breadth-first order, the discipline of
/// Fig. 5 and Fig. 8. Expansion order doubles as the *canonical* order —
/// the parallel engine reproduces exactly the violation set and paths this
/// order yields.
#[derive(Default)]
pub struct FifoFrontier<P: Protocol> {
    items: VecDeque<FrontierItem<P>>,
}

impl<P: Protocol> FifoFrontier<P> {
    /// An empty frontier.
    pub fn new() -> Self {
        FifoFrontier {
            items: VecDeque::new(),
        }
    }
}

impl<P: Protocol> Frontier<P> for FifoFrontier<P> {
    fn push(&mut self, item: FrontierItem<P>) {
        self.items.push_back(item);
    }
    fn pop(&mut self) -> Option<FrontierItem<P>> {
        self.items.pop_front()
    }
    fn len(&self) -> usize {
        self.items.len()
    }
}

/// Outcome of a leveled insert into [`LockFreeExplored`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// The hash was absent; this caller admitted it.
    Fresh,
    /// The hash was already present, admitted at the recorded level.
    Seen {
        /// The level the winning insert carried (clamped to
        /// [`LockFreeExplored::stored_level`] under the compact layout).
        level: u64,
    },
}

/// Empty-slot sentinel. State hashes equal to zero are remapped (see
/// `LockFreeExplored::normalize`); the remap merges hash `0` with one
/// fixed 64-bit constant, the same collision class the hash-compressed
/// explored set already accepts everywhere.
const EMPTY: u64 = 0;

/// Substitute key for hash 0 (an arbitrary odd constant).
const ZERO_SUB: u64 = 0xd6e8_feb8_6659_fd93;

/// Max slots probed (linearly) in one segment before chaining to the next.
/// The probe sequence per (key, segment) is deterministic, and an inserter
/// never skips an empty slot without CAS-claiming it — together these make
/// the segment-overflow decision race-free (see `Segment::insert`).
const PROBE_WINDOW: usize = 64;

/// Hard cap on chained segments. Capacities double per segment, so with
/// the smallest initial capacity this still covers > 2^40 entries.
const MAX_SEGMENTS: usize = 36;

/// Level stamps under the compact layout live in the low 16 bits of the
/// slot word; deeper levels saturate here. BFS levels anywhere near this
/// bound are unreachable in practice (the searches cap depth far lower).
const LEVEL_MASK: u64 = 0xFFFF;

/// Entries per spill-run block: the unit of one disk read on a probe.
/// 512 compact entries = 4 KiB.
const SPILL_BLOCK: usize = 512;

/// 48-bit fingerprint of a (normalized, nonzero) key: the identity an
/// entry keeps under the compact layout and in compact spill runs. Mixing
/// before truncating decorrelates it from structured hashes; zero is
/// remapped so a packed word of 0 always means "empty slot".
fn fingerprint48(key: u64) -> u64 {
    let fp = (key.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ key) >> 16;
    if fp == 0 {
        ZERO_SUB >> 16
    } else {
        fp
    }
}

/// One full-width slot: the CAS-published key and its level stamp,
/// adjacent so a probe touches one cache line. `level` is written *before*
/// the key CAS and read only after an acquire-load of the key observed the
/// published hash.
struct Slot {
    key: AtomicU64,
    level: AtomicU64,
}

/// Slot storage for one segment, chosen at table construction.
///
/// * `Full` — 16 bytes/entry: the exact 64-bit key plus a full-width
///   level stamp, published with a store-then-CAS ordering chain.
/// * `Compact` — 8 bytes/entry: `fingerprint48 << 16 | level16` packed
///   into a single word, so one CAS carries both membership and stamp
///   (no ordering chain at all). The fingerprint truncation widens the
///   accepted collision class from 2^-64 to 2^-48 per pair — the same
///   kind of class the hash-compressed explored set already accepts,
///   and negligible at the state counts the compaction exists to reach.
enum Slots {
    Full(Box<[Slot]>),
    Compact(Box<[AtomicU64]>),
}

/// One fixed-capacity open-addressing array.
struct Segment {
    slots: Slots,
    mask: usize,
}

impl Segment {
    fn new(cap: usize, compact: bool) -> Box<Segment> {
        debug_assert!(cap.is_power_of_two());
        let slots = if compact {
            Slots::Compact((0..cap).map(|_| AtomicU64::new(EMPTY)).collect())
        } else {
            Slots::Full(
                (0..cap)
                    .map(|_| Slot {
                        key: AtomicU64::new(EMPTY),
                        level: AtomicU64::new(0),
                    })
                    .collect(),
            )
        };
        Box::new(Segment {
            slots,
            mask: cap - 1,
        })
    }

    fn cap(&self) -> usize {
        self.mask + 1
    }

    fn bytes(&self) -> usize {
        match &self.slots {
            Slots::Full(_) => self.cap() * std::mem::size_of::<Slot>(),
            Slots::Compact(_) => self.cap() * 8,
        }
    }

    /// Deterministic probe start (Fibonacci mixing decorrelates the probe
    /// start from raw structured hashes).
    fn probe_start(key: u64, mask: usize) -> usize {
        ((key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize) & mask
    }

    /// Inserts `key` into this segment, or reports it present or the
    /// window full. Linear probing over a deterministic window; an empty
    /// slot is always CAS-claimed, never skipped, so two racers for the
    /// same key can never split across segments: if one racer observes
    /// the window full, every slot it saw is occupied forever — the other
    /// racer's key cannot be (or land) among them unnoticed.
    fn insert(&self, key: u64, level: u64) -> SegOutcome {
        let mut i = Self::probe_start(key, self.mask);
        match &self.slots {
            Slots::Full(slots) => {
                for _ in 0..PROBE_WINDOW.min(slots.len()) {
                    let slot = &slots[i];
                    let cur = slot.key.load(Ordering::Acquire);
                    if cur == key {
                        return SegOutcome::Present {
                            level: slot.level.load(Ordering::Relaxed),
                        };
                    }
                    if cur == EMPTY {
                        // Publish the stamp first: the key CAS below
                        // releases it, so any acquire-load that observes
                        // the key sees the stamp. A racer for a
                        // *different* key may overwrite this store before
                        // our CAS; under the same-level-per-phase
                        // discipline both wrote the same value.
                        slot.level.store(level, Ordering::Relaxed);
                        match slot.key.compare_exchange(
                            EMPTY,
                            key,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        ) {
                            Ok(_) => return SegOutcome::Inserted,
                            Err(found) if found == key => {
                                return SegOutcome::Present {
                                    level: slot.level.load(Ordering::Relaxed),
                                }
                            }
                            Err(_) => {} // another key claimed it; keep probing
                        }
                    }
                    i = (i + 1) & self.mask;
                }
            }
            Slots::Compact(words) => {
                let fp = fingerprint48(key);
                let want = (fp << 16) | level.min(LEVEL_MASK);
                for _ in 0..PROBE_WINDOW.min(words.len()) {
                    let word = &words[i];
                    let cur = word.load(Ordering::Acquire);
                    if cur >> 16 == fp {
                        return SegOutcome::Present {
                            level: cur & LEVEL_MASK,
                        };
                    }
                    if cur == EMPTY {
                        // Membership and stamp travel in one CAS — no
                        // store-then-publish chain to order.
                        match word.compare_exchange(
                            EMPTY,
                            want,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        ) {
                            Ok(_) => return SegOutcome::Inserted,
                            Err(found) if found >> 16 == fp => {
                                return SegOutcome::Present {
                                    level: found & LEVEL_MASK,
                                }
                            }
                            Err(_) => {}
                        }
                    }
                    i = (i + 1) & self.mask;
                }
            }
        }
        SegOutcome::Full
    }

    /// Looks `key` up in this segment. The first empty slot in the window
    /// proves absence from this *and all later* segments: inserts claim
    /// the first empty slot of their window and only chain when the whole
    /// window was full, and occupied slots never empty again.
    fn find(&self, key: u64) -> Option<bool> {
        let mut i = Self::probe_start(key, self.mask);
        match &self.slots {
            Slots::Full(slots) => {
                for _ in 0..PROBE_WINDOW.min(slots.len()) {
                    match slots[i].key.load(Ordering::Acquire) {
                        k if k == key => return Some(true),
                        EMPTY => return Some(false),
                        _ => i = (i + 1) & self.mask,
                    }
                }
            }
            Slots::Compact(words) => {
                let fp = fingerprint48(key);
                for _ in 0..PROBE_WINDOW.min(words.len()) {
                    match words[i].load(Ordering::Acquire) {
                        w if w >> 16 == fp => return Some(true),
                        EMPTY => return Some(false),
                        _ => i = (i + 1) & self.mask,
                    }
                }
            }
        }
        None // window full of other keys: the key may live in a later segment
    }

    /// Visits every occupied slot as `(sort_key, level)` — the identity an
    /// entry keeps on disk (the key itself in the full layout, the 48-bit
    /// fingerprint in the compact one). Only sound at a quiescent point
    /// (the spill path holds `&mut LockFreeExplored`).
    fn each_entry(&self, mut f: impl FnMut(u64, u64)) {
        match &self.slots {
            Slots::Full(slots) => {
                for slot in slots.iter() {
                    let k = slot.key.load(Ordering::Acquire);
                    if k != EMPTY {
                        f(k, slot.level.load(Ordering::Relaxed));
                    }
                }
            }
            Slots::Compact(words) => {
                for word in words.iter() {
                    let w = word.load(Ordering::Acquire);
                    if w != EMPTY {
                        f(w >> 16, w & LEVEL_MASK);
                    }
                }
            }
        }
    }
}

/// What one segment said about a key.
enum SegOutcome {
    Inserted,
    Present {
        level: u64,
    },
    /// Every slot in the key's probe window is occupied by other keys.
    Full,
}

/// The on-disk tier: one sorted immutable run of `(sort_key, level)`
/// entries in a temp file, with a resident block index (first key of each
/// [`SPILL_BLOCK`]-entry block) and a small bloom filter so the common
/// fresh-key probe costs no I/O. Rebuilt wholesale by each
/// [`LockFreeExplored::spill_to_disk`] (the new RAM entries merge-sort
/// with the previous run into a new file).
struct SpillTier {
    file: File,
    path: PathBuf,
    entries: u64,
    entry_bytes: usize,
    block_index: Vec<u64>,
    bloom_words: Box<[u64]>,
    /// `bloom bits - 1` (bit count is a power of two).
    bloom_mask: u64,
    #[cfg(not(unix))]
    seek: Mutex<()>,
}

fn bloom_probes(key: u64) -> (u64, u64) {
    let h1 = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let h2 = key.wrapping_mul(0xc2b2_ae3d_27d4_eb4f) | 1;
    (h1, h2)
}

fn bloom_set(words: &mut [u64], mask: u64, key: u64) {
    let (h1, h2) = bloom_probes(key);
    for i in 0..3u64 {
        let bit = h1.wrapping_add(i.wrapping_mul(h2)) & mask;
        words[(bit / 64) as usize] |= 1 << (bit % 64);
    }
}

impl SpillTier {
    fn bloom_contains(&self, key: u64) -> bool {
        let (h1, h2) = bloom_probes(key);
        (0..3u64).all(|i| {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) & self.bloom_mask;
            self.bloom_words[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    fn read_exact_at(&self, buf: &mut [u8], off: u64) -> io::Result<()> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(buf, off)
        }
        #[cfg(not(unix))]
        {
            use std::io::{Seek, SeekFrom};
            let _g = self.seek.lock().expect("spill seek lock poisoned");
            let mut f = &self.file;
            f.seek(SeekFrom::Start(off))?;
            f.read_exact(buf)
        }
    }

    /// Level of `sort_key` in the run, if present. Bloom-gated; one block
    /// read on a bloom hit.
    fn find(&self, sort_key: u64) -> Option<u64> {
        if self.entries == 0 || !self.bloom_contains(sort_key) {
            return None;
        }
        let block = match self.block_index.partition_point(|&first| first <= sort_key) {
            0 => return None, // below the smallest spilled key
            b => b - 1,
        };
        let start = block as u64 * SPILL_BLOCK as u64;
        let count = SPILL_BLOCK.min((self.entries - start) as usize);
        let mut buf = vec![0u8; count * self.entry_bytes];
        self.read_exact_at(&mut buf, start * self.entry_bytes as u64)
            .ok()?;
        for chunk in buf.chunks_exact(self.entry_bytes) {
            let (k, level) = decode_entry(chunk);
            if k == sort_key {
                return Some(level);
            }
            if k > sort_key {
                return None;
            }
        }
        None
    }

    /// RAM the tier itself holds (index + bloom; the run lives on disk).
    fn resident_bytes(&self) -> usize {
        self.block_index.len() * 8 + self.bloom_words.len() * 8
    }
}

impl Drop for SpillTier {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

fn decode_entry(chunk: &[u8]) -> (u64, u64) {
    if chunk.len() == 8 {
        let w = u64::from_le_bytes(chunk.try_into().expect("8-byte entry"));
        (w >> 16, w & LEVEL_MASK)
    } else {
        let k = u64::from_le_bytes(chunk[..8].try_into().expect("16-byte entry"));
        let l = u64::from_le_bytes(chunk[8..].try_into().expect("16-byte entry"));
        (k, l)
    }
}

fn encode_entry(out: &mut Vec<u8>, entry_bytes: usize, k: u64, level: u64) {
    if entry_bytes == 8 {
        out.extend_from_slice(&((k << 16) | level.min(LEVEL_MASK)).to_le_bytes());
    } else {
        out.extend_from_slice(&k.to_le_bytes());
        out.extend_from_slice(&level.to_le_bytes());
    }
}

/// The `explored` hash set, lock-free.
///
/// Open-addressing segments of atomic slots; an insert is a single CAS on
/// the common path. When a key's probe window in every published segment
/// is full, the inserter publishes a new segment of twice the capacity
/// (CAS on the segment pointer, so concurrent growers agree) and inserts
/// there. Entries are never removed, and segments are only freed at a
/// quiescent point that holds `&mut self` ([`Self::spill_to_disk`]) or at
/// drop — shared borrows never observe a freed segment, so no epochs or
/// hazard pointers are needed.
///
/// Each entry carries a caller-supplied *level* stamp
/// ([`LockFreeExplored::insert_leveled`]). Membership (who wins an insert
/// race) is decided by the key CAS alone and holds unconditionally; the
/// stamp read back by losers is exact under the discipline the parallel
/// engine obeys — all concurrent inserters pass the same level, and level
/// changes are separated by a happens-before barrier (the engine's
/// per-level phase boundary). Stamps from different levels never race.
///
/// A key lives in exactly one place — one RAM slot, or one spill-run
/// entry, never both (the spill drains RAM wholesale and later inserts
/// check the run first) — so exactly-once admission survives spilling.
pub struct LockFreeExplored {
    segments: [AtomicPtr<Segment>; MAX_SEGMENTS],
    len: AtomicUsize,
    compact: bool,
    initial_cap: usize,
    /// Written only under `&mut self` (level boundaries); read lock-free.
    spill: Option<SpillTier>,
    spills: usize,
}

impl LockFreeExplored {
    /// Creates a set with the default initial capacity (4096 slots) and
    /// the full-width slot layout.
    pub fn new() -> Self {
        Self::with_capacity(1 << 12)
    }

    /// Creates a full-width set whose first segment holds at least `cap`
    /// slots (rounded up to a power of two, min 16). Smaller first
    /// segments chain earlier — useful to exercise the growth path in
    /// tests.
    pub fn with_capacity(cap: usize) -> Self {
        Self::with_options(cap, false)
    }

    /// Creates a set with an explicit slot layout: `compact` packs each
    /// entry into 8 bytes (48-bit fingerprint + 16-bit level) instead of
    /// 16, halving resident bytes per state at the cost of a 2^-48
    /// per-pair fingerprint collision class.
    pub fn with_options(cap: usize, compact: bool) -> Self {
        let cap = cap.max(16).next_power_of_two();
        let set = LockFreeExplored {
            segments: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            len: AtomicUsize::new(0),
            compact,
            initial_cap: cap,
            spill: None,
            spills: 0,
        };
        set.segments[0].store(Box::into_raw(Segment::new(cap, compact)), Ordering::Release);
        set
    }

    /// Remaps the empty-slot sentinel to a fixed substitute key.
    fn normalize(h: u64) -> u64 {
        if h == EMPTY {
            ZERO_SUB
        } else {
            h
        }
    }

    /// The identity a normalized key keeps on disk: the key itself in the
    /// full layout, its 48-bit fingerprint in the compact one.
    fn sort_key(&self, key: u64) -> u64 {
        if self.compact {
            fingerprint48(key)
        } else {
            key
        }
    }

    /// The level stamp as this table will store it (compact layouts
    /// saturate at 16 bits). Callers comparing an [`Admission::Seen`]
    /// level against a stamp they passed in must compare against this.
    pub fn stored_level(&self, level: u64) -> u64 {
        if self.compact {
            level.min(LEVEL_MASK)
        } else {
            level
        }
    }

    /// The published segment at `ix`, if any.
    fn segment(&self, ix: usize) -> Option<&Segment> {
        let p = self.segments[ix].load(Ordering::Acquire);
        if p.is_null() {
            None
        } else {
            // SAFETY: published segments are only freed under `&mut self`
            // (spill) or drop; no shared borrow outlives either.
            Some(unsafe { &*p })
        }
    }

    /// Publishes (or adopts a racer's) segment at `ix`, doubling the
    /// previous capacity.
    fn grow(&self, ix: usize, prev_cap: usize) -> &Segment {
        assert!(ix < MAX_SEGMENTS, "explored set exceeded segment cap");
        let fresh = Box::into_raw(Segment::new(prev_cap * 2, self.compact));
        match self.segments[ix].compare_exchange(
            std::ptr::null_mut(),
            fresh,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            // SAFETY: just published; freed only under &mut self or drop.
            Ok(_) => unsafe { &*fresh },
            Err(winner) => {
                // SAFETY: we own `fresh` (the CAS rejected it).
                drop(unsafe { Box::from_raw(fresh) });
                // SAFETY: the winner's pointer is published and live.
                unsafe { &*winner }
            }
        }
    }

    /// Level of the spilled copy of `key`, if the spill tier holds one.
    fn spill_find(&self, key: u64) -> Option<u64> {
        let spill = self.spill.as_ref()?;
        spill.find(self.sort_key(key))
    }

    /// Inserts `h` stamped with `level`; returns [`Admission::Fresh`] iff
    /// it was not present. Exactly one of any set of concurrent inserters
    /// of the same hash gets `Fresh`. All concurrent callers must pass
    /// the same `level` (see the type docs) for losers' stamp readbacks
    /// to be exact; membership does not depend on it.
    pub fn insert_leveled(&self, h: u64, level: u64) -> Admission {
        let key = Self::normalize(h);
        if let Some(level) = self.spill_find(key) {
            return Admission::Seen { level };
        }
        let mut ix = 0;
        loop {
            let seg = match self.segment(ix) {
                Some(seg) => seg,
                None => {
                    let prev = self.segment(ix - 1).expect("previous segment exists");
                    self.grow(ix, prev.cap())
                }
            };
            match seg.insert(key, level) {
                SegOutcome::Inserted => {
                    self.len.fetch_add(1, Ordering::Relaxed);
                    return Admission::Fresh;
                }
                SegOutcome::Present { level } => return Admission::Seen { level },
                SegOutcome::Full => ix += 1,
            }
        }
    }

    /// Inserts `h` (stamp 0); returns true iff it was not present.
    pub fn insert(&self, h: u64) -> bool {
        matches!(self.insert_leveled(h, 0), Admission::Fresh)
    }

    /// Starts a batched insert handle for a burst of inserts from one
    /// task: the segment-chain walk is snapshotted once per batch (one
    /// acquire edge instead of one per insert) and the shared length
    /// counter takes one update per batch (on [`ExploredBatch::flush`] or
    /// drop) instead of one per admitted state. The per-key CAS — the
    /// carrier of exactly-once admission — is unchanged.
    pub fn batch(&self) -> ExploredBatch<'_> {
        let mut segs = Vec::with_capacity(4);
        let mut ix = 0;
        while let Some(seg) = self.segment(ix) {
            segs.push(seg);
            ix += 1;
        }
        ExploredBatch {
            table: self,
            segs,
            admitted: 0,
        }
    }

    /// True if `h` has been inserted.
    pub fn contains(&self, h: u64) -> bool {
        let key = Self::normalize(h);
        if self.spill_find(key).is_some() {
            return true;
        }
        let mut ix = 0;
        while let Some(seg) = self.segment(ix) {
            match seg.find(key) {
                Some(found) => return found,
                None => ix += 1,
            }
        }
        false
    }

    /// Moves every resident entry into the on-disk spill run (merging
    /// with any previous run), then restarts the RAM tier with one fresh
    /// segment at the initial capacity. Requires `&mut self`: the caller
    /// guarantees quiescence (the engine calls this only at level
    /// boundaries, after every scope has joined), which is also what
    /// makes freeing the drained segments sound.
    ///
    /// Exactly-once admission is preserved because a key lives in the run
    /// *xor* in RAM: probes consult the run first, so a spilled key can
    /// never be re-admitted. On I/O error the table is left untouched
    /// (all entries still resident) and the error returned.
    pub fn spill_to_disk(&mut self) -> io::Result<()> {
        let mut fresh: Vec<(u64, u64)> = Vec::new();
        for ix in 0..MAX_SEGMENTS {
            match self.segment(ix) {
                Some(seg) => seg.each_entry(|k, l| fresh.push((k, l))),
                None => break,
            }
        }
        fresh.sort_unstable_by_key(|e| e.0);
        let old = self
            .spill
            .as_ref()
            .map(|s| (s.path.clone(), s.entries))
            .unwrap_or((PathBuf::new(), 0));
        let total = fresh.len() as u64 + old.1;
        if total == 0 {
            return Ok(());
        }
        let entry_bytes = if self.compact { 8 } else { 16 };

        static SPILL_SEQ: AtomicUsize = AtomicUsize::new(0);
        let path = std::env::temp_dir().join(format!(
            "cb-explored-{}-{}.run",
            std::process::id(),
            SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let mut writer = BufWriter::new(File::create(&path)?);

        let bloom_bits = (total.saturating_mul(8)).next_power_of_two().max(1024);
        let mut bloom = vec![0u64; (bloom_bits / 64) as usize];
        let mut block_index = Vec::with_capacity((total as usize).div_ceil(SPILL_BLOCK));
        let mut written = 0u64;
        let mut buf = Vec::with_capacity(entry_bytes);
        let mut emit = |w: &mut BufWriter<File>, k: u64, level: u64| -> io::Result<()> {
            if written.is_multiple_of(SPILL_BLOCK as u64) {
                block_index.push(k);
            }
            bloom_set(&mut bloom, bloom_bits - 1, k);
            buf.clear();
            encode_entry(&mut buf, entry_bytes, k, level);
            w.write_all(&buf)?;
            written += 1;
            Ok(())
        };

        // Merge the previous sorted run (streamed) with the fresh RAM
        // entries (sorted above). The streams are disjoint by the
        // run-xor-RAM invariant, so this is a plain two-way merge.
        let mut fresh_it = fresh.into_iter().peekable();
        let mut old_reader = if old.1 > 0 {
            Some(BufReader::new(File::open(&old.0)?))
        } else {
            None
        };
        let mut old_left = old.1;
        let mut read_old = |r: &mut Option<BufReader<File>>| -> io::Result<Option<(u64, u64)>> {
            if old_left == 0 {
                return Ok(None);
            }
            old_left -= 1;
            let rdr = r.as_mut().expect("old run reader");
            let mut chunk = [0u8; 16];
            rdr.read_exact(&mut chunk[..entry_bytes])?;
            Ok(Some(decode_entry(&chunk[..entry_bytes])))
        };
        let mut old_cur = read_old(&mut old_reader)?;
        loop {
            let take_old = match (old_cur, fresh_it.peek()) {
                (None, None) => break,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some((ok, _)), Some(&(fk, _))) => ok <= fk,
            };
            let (k, level) = if take_old {
                let e = old_cur.expect("old entry");
                old_cur = read_old(&mut old_reader)?;
                e
            } else {
                fresh_it.next().expect("fresh entry")
            };
            emit(&mut writer, k, level)?;
        }
        writer.flush()?;
        let file = File::open(&path)?;

        // Install the new run (dropping the old tier removes its file),
        // then drain and restart the RAM segment chain. Nothing above
        // mutated the table, so an early `?` return leaves it intact.
        self.spill = Some(SpillTier {
            file,
            path,
            entries: written,
            entry_bytes,
            block_index,
            bloom_words: bloom.into_boxed_slice(),
            bloom_mask: bloom_bits - 1,
            #[cfg(not(unix))]
            seek: Mutex::new(()),
        });
        self.spills += 1;
        for slot in &self.segments {
            let p = slot.swap(std::ptr::null_mut(), Ordering::AcqRel);
            if !p.is_null() {
                // SAFETY: &mut self — no shared borrow can hold this.
                drop(unsafe { Box::from_raw(p) });
            }
        }
        self.segments[0].store(
            Box::into_raw(Segment::new(self.initial_cap, self.compact)),
            Ordering::Release,
        );
        Ok(())
    }

    /// Total number of distinct hashes inserted (resident + spilled).
    /// Batched inserts publish their count at batch flush, so this is
    /// exact at phase boundaries.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// True if nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of RAM the set currently holds: allocated slot arrays plus
    /// the spill tier's resident index and bloom filter.
    pub fn resident_bytes(&self) -> usize {
        let mut bytes = 0;
        for ix in 0..MAX_SEGMENTS {
            match self.segment(ix) {
                Some(seg) => bytes += seg.bytes(),
                None => break,
            }
        }
        if let Some(spill) = &self.spill {
            bytes += spill.resident_bytes();
        }
        bytes
    }

    /// Bytes of entries moved to disk across all spills so far.
    pub fn spilled_bytes(&self) -> u64 {
        self.spill
            .as_ref()
            .map(|s| s.entries * s.entry_bytes as u64)
            .unwrap_or(0)
    }

    /// Number of [`Self::spill_to_disk`] calls that moved entries.
    pub fn spill_count(&self) -> usize {
        self.spills
    }

    /// Bytes one entry occupies in a slot array (8 compact, 16 full).
    pub fn entry_bytes(&self) -> usize {
        if self.compact {
            8
        } else {
            16
        }
    }

    /// Number of published segments (growth observability for tests).
    pub fn segment_count(&self) -> usize {
        (0..MAX_SEGMENTS)
            .take_while(|&ix| self.segment(ix).is_some())
            .count()
    }
}

impl Default for LockFreeExplored {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for LockFreeExplored {
    fn drop(&mut self) {
        for slot in &self.segments {
            let p = slot.load(Ordering::Acquire);
            if !p.is_null() {
                // SAFETY: exclusively owned in drop; published via Box::into_raw.
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

// SAFETY: slot state is atomic; segments are published once, immutable in
// shape, and freed only under exclusive access; the spill tier is mutated
// only under `&mut self` and its reads share no state.
unsafe impl Send for LockFreeExplored {}
unsafe impl Sync for LockFreeExplored {}

/// A batched insert handle from [`LockFreeExplored::batch`]: one
/// segment-chain snapshot and one shared-length update per batch. Dropping
/// the batch flushes; the per-key CAS semantics are identical to
/// [`LockFreeExplored::insert_leveled`].
pub struct ExploredBatch<'a> {
    table: &'a LockFreeExplored,
    segs: Vec<&'a Segment>,
    admitted: usize,
}

impl ExploredBatch<'_> {
    /// Batched [`LockFreeExplored::insert_leveled`]; same admission
    /// semantics, amortized synchronization.
    pub fn insert_leveled(&mut self, h: u64, level: u64) -> Admission {
        let key = LockFreeExplored::normalize(h);
        if let Some(level) = self.table.spill_find(key) {
            return Admission::Seen { level };
        }
        let mut ix = 0;
        loop {
            let seg = match self.segs.get(ix) {
                Some(seg) => *seg,
                None => {
                    // Past the snapshot: adopt a segment another task
                    // published since, or grow one ourselves.
                    let seg = match self.table.segment(ix) {
                        Some(seg) => seg,
                        None => {
                            let prev_cap = self.segs[ix - 1].cap();
                            self.table.grow(ix, prev_cap)
                        }
                    };
                    self.segs.push(seg);
                    seg
                }
            };
            match seg.insert(key, level) {
                SegOutcome::Inserted => {
                    self.admitted += 1;
                    return Admission::Fresh;
                }
                SegOutcome::Present { level } => return Admission::Seen { level },
                SegOutcome::Full => ix += 1,
            }
        }
    }

    /// Publishes this batch's admitted count to the shared length.
    pub fn flush(&mut self) {
        if self.admitted > 0 {
            self.table.len.fetch_add(self.admitted, Ordering::Relaxed);
            self.admitted = 0;
        }
    }
}

impl Drop for ExploredBatch<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Per-worker work queues with stealing, distributing indices `0..n`.
pub struct StealQueues {
    queues: Vec<Mutex<VecDeque<usize>>>,
}

impl StealQueues {
    /// Splits `0..n` into `workers` contiguous chunks (locality within a
    /// worker, stealing across workers when load skews).
    pub fn split(workers: usize, n: usize) -> Self {
        let workers = workers.max(1);
        let mut queues: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        let chunk = n.div_ceil(workers).max(1);
        for i in 0..n {
            queues[(i / chunk).min(workers - 1)].push_back(i);
        }
        StealQueues {
            queues: queues.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Next index for worker `w`: its own queue front first, then a steal
    /// from the back of the first non-empty sibling.
    pub fn next(&self, w: usize) -> Option<usize> {
        if let Some(i) = self.queues[w]
            .lock()
            .expect("work queue poisoned")
            .pop_front()
        {
            return Some(i);
        }
        let n = self.queues.len();
        for off in 1..n {
            let victim = (w + off) % n;
            if let Some(i) = self.queues[victim]
                .lock()
                .expect("work queue poisoned")
                .pop_back()
            {
                return Some(i);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::WorkerPool;
    use cb_model::testproto::Ping;
    use cb_model::NodeId;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_frontier_is_fifo() {
        let cfg = Ping {
            kick_target: NodeId(0),
            kick_enabled: false,
        };
        let gs = GlobalState::init(&cfg, [NodeId(0)]);
        let mut f: FifoFrontier<Ping> = FifoFrontier::new();
        assert!(f.is_empty());
        for depth in 0..4 {
            f.push(FrontierItem {
                state: gs.clone(),
                rec: None,
                depth,
            });
        }
        assert_eq!(f.len(), 4);
        for depth in 0..4 {
            assert_eq!(f.pop().expect("item").depth, depth);
        }
        assert!(f.pop().is_none());
    }

    #[test]
    fn lock_free_set_basic() {
        let s = LockFreeExplored::new();
        assert!(s.is_empty());
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.contains(7));
        assert!(!s.contains(8));
        assert!(s.insert(8));
        assert_eq!(s.len(), 2);
        assert_eq!(s.segment_count(), 1);
    }

    #[test]
    fn zero_hash_is_a_valid_member() {
        for compact in [false, true] {
            let s = LockFreeExplored::with_options(16, compact);
            assert!(!s.contains(0));
            assert!(s.insert(0));
            assert!(!s.insert(0));
            assert!(s.contains(0));
            assert_eq!(s.len(), 1);
        }
    }

    #[test]
    fn level_stamps_record_the_admitting_level() {
        for compact in [false, true] {
            let s = LockFreeExplored::with_options(16, compact);
            assert_eq!(s.insert_leveled(42, 3), Admission::Fresh);
            assert_eq!(s.insert_leveled(42, 5), Admission::Seen { level: 3 });
            assert_eq!(s.insert_leveled(42, 3), Admission::Seen { level: 3 });
            assert_eq!(s.insert_leveled(43, 5), Admission::Fresh);
            assert_eq!(s.insert_leveled(43, 9), Admission::Seen { level: 5 });
        }
    }

    #[test]
    fn growth_chains_segments_and_keeps_set_semantics() {
        // A first segment of 16 slots with a 64-slot probe window fills
        // fast; 10_000 keys force several chained segments. Runs under
        // both slot layouts — the compact one must keep identical set
        // semantics through growth.
        for compact in [false, true] {
            let s = LockFreeExplored::with_options(16, compact);
            for k in 0..10_000u64 {
                assert!(s.insert(k.wrapping_mul(0x2545_f491_4f6c_dd1d)));
            }
            assert!(s.segment_count() > 1, "growth path exercised");
            assert_eq!(s.len(), 10_000);
            for k in 0..10_000u64 {
                let h = k.wrapping_mul(0x2545_f491_4f6c_dd1d);
                assert!(s.contains(h));
                assert!(!s.insert(h), "re-insert after growth stays a duplicate");
            }
            assert!(!s.contains(0xdead_beef));
            if compact {
                assert_eq!(s.entry_bytes(), 8);
            }
        }
    }

    /// The property the parallel engine's correctness rests on: under
    /// concurrent insertion of overlapping hash streams, every hash is won
    /// by exactly one inserter — a state can never be expanded twice.
    #[test]
    fn never_double_admits_under_concurrency() {
        let set = LockFreeExplored::new();
        let wins = AtomicUsize::new(0);
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let set = &set;
                let wins = &wins;
                s.spawn(move || {
                    // Every thread tries the same hash universe, shifted so
                    // contention patterns differ per thread.
                    for k in 0..per_thread {
                        let h = (k + t * 37) % per_thread;
                        if set.insert(h) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(
            wins.load(Ordering::Relaxed),
            per_thread as usize,
            "each hash admitted exactly once across {threads} racing threads"
        );
        assert_eq!(set.len(), per_thread as usize);
    }

    /// The same exactly-once property hammered from `WorkerPool` workers —
    /// the threads the real expand phase runs on — through the
    /// growth/segment-chain path, checked against a reference `HashSet`.
    /// Runs under both slot layouts and with batched insert handles (the
    /// production expand path), so the batched CAS admission is proven
    /// against the same reference.
    #[test]
    fn pool_workers_agree_with_reference_set_through_growth() {
        for compact in [false, true] {
            let pool = WorkerPool::new(4);
            let set = LockFreeExplored::with_options(32, compact);
            let workers = 6;
            let per_worker = 8_000usize;
            // Overlapping pseudo-random streams: ~half of each worker's keys
            // collide with a sibling's.
            let key = |w: usize, k: usize| -> u64 {
                let shared = k.is_multiple_of(2);
                let x = if shared {
                    k as u64
                } else {
                    (w * 1_000_000 + k) as u64
                };
                x.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (x >> 7)
            };
            let wins: Vec<Mutex<Vec<u64>>> = (0..workers).map(|_| Mutex::new(Vec::new())).collect();
            pool.scope(|s| {
                for w in 0..workers {
                    let set = &set;
                    let wins = &wins;
                    let key = &key;
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        let mut batch = set.batch();
                        for k in 0..per_worker {
                            let h = key(w, k);
                            if batch.insert_leveled(h, 1) == Admission::Fresh {
                                mine.push(h);
                            }
                        }
                        drop(batch);
                        *wins[w].lock().unwrap() = mine;
                    });
                }
            });
            let mut reference: HashSet<u64> = HashSet::new();
            for w in 0..workers {
                for k in 0..per_worker {
                    reference.insert(LockFreeExplored::normalize(key(w, k)));
                }
            }
            let mut won: Vec<u64> = Vec::new();
            for w in wins {
                won.extend(w.into_inner().unwrap());
            }
            let distinct_wins: HashSet<u64> = won
                .iter()
                .map(|&h| LockFreeExplored::normalize(h))
                .collect();
            assert_eq!(
                won.len(),
                distinct_wins.len(),
                "no hash was admitted twice across racing pool workers (compact={compact})"
            );
            assert_eq!(distinct_wins, reference, "wins cover exactly the universe");
            assert_eq!(set.len(), reference.len(), "batched len flushes are exact");
            assert!(set.segment_count() > 1, "contention crossed segment chains");
            for &h in &reference {
                assert!(set.contains(h));
                assert_eq!(set.insert_leveled(h, 9), Admission::Seen { level: 1 });
            }
        }
    }

    /// Spill-and-rehit round-trip under both layouts: spilled entries stay
    /// members with their admitting level, fresh keys still insert, and a
    /// second spill merges the runs.
    #[test]
    fn spill_roundtrip_keeps_membership_and_levels() {
        for compact in [false, true] {
            let mut s = LockFreeExplored::with_options(16, compact);
            // k starts at 1: k = 0 would hash to 0, which normalizes to
            // the same member as the explicit zero-hash insert below.
            for k in 1..=4_000u64 {
                let h = k.wrapping_mul(0x2545_f491_4f6c_dd1d);
                assert_eq!(s.insert_leveled(h, (k % 7) + 1), Admission::Fresh);
            }
            assert!(s.insert(0), "zero hash admitted before spill");
            let resident_before = s.resident_bytes();
            s.spill_to_disk().expect("first spill");
            assert_eq!(s.spill_count(), 1);
            assert!(s.spilled_bytes() > 0);
            assert!(
                s.resident_bytes() < resident_before,
                "spill shrank the resident footprint \
                 ({} -> {})",
                resident_before,
                s.resident_bytes()
            );
            assert_eq!(s.len(), 4_001, "len counts spilled entries");
            assert!(s.contains(0), "zero hash survives the spill");
            for k in 1..=4_000u64 {
                let h = k.wrapping_mul(0x2545_f491_4f6c_dd1d);
                assert!(s.contains(h), "spilled key remains a member");
                assert_eq!(
                    s.insert_leveled(h, 99),
                    Admission::Seen { level: (k % 7) + 1 },
                    "re-insert of a spilled key reports its admitting level"
                );
            }
            // A second wave inserts fresh keys, then a second spill must
            // merge the runs and keep both waves.
            for k in 4_001..=8_000u64 {
                let h = k.wrapping_mul(0x2545_f491_4f6c_dd1d);
                assert_eq!(s.insert_leveled(h, 9), Admission::Fresh);
            }
            s.spill_to_disk().expect("second spill");
            assert_eq!(s.spill_count(), 2);
            assert_eq!(s.len(), 8_001);
            for k in 1..=8_000u64 {
                let h = k.wrapping_mul(0x2545_f491_4f6c_dd1d);
                assert!(s.contains(h), "both spill waves remain members");
                assert!(!s.insert(h));
            }
            assert!(!s.contains(0xdead_beef));
        }
    }

    /// Exactly-once admission across spills under pool contention: racing
    /// batched inserters between two spill boundaries, checked against a
    /// reference `HashSet` exactly like the in-RAM growth test.
    #[test]
    fn spill_preserves_exactly_once_under_pool_contention() {
        for compact in [false, true] {
            let pool = WorkerPool::new(4);
            let mut set = LockFreeExplored::with_options(32, compact);
            let workers = 4;
            let per_worker = 3_000usize;
            let key = |phase: usize, w: usize, k: usize| -> u64 {
                // Overlap within a phase (shared even keys) and across
                // phases (each phase re-tries the previous phase's shared
                // range, which by then is spilled).
                let shared = k.is_multiple_of(2);
                let x = if shared {
                    (phase / 2 * 1_000 + k) as u64
                } else {
                    (phase * 50_000_000 + w * 1_000_000 + k) as u64
                };
                x.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (x >> 7)
            };
            let mut won: Vec<u64> = Vec::new();
            for phase in 0..3 {
                let wins: Vec<Mutex<Vec<u64>>> =
                    (0..workers).map(|_| Mutex::new(Vec::new())).collect();
                let set_ref = &set;
                pool.scope(|s| {
                    for w in 0..workers {
                        let wins = &wins;
                        let key = &key;
                        s.spawn(move || {
                            let mut mine = Vec::new();
                            let mut batch = set_ref.batch();
                            for k in 0..per_worker {
                                let h = key(phase, w, k);
                                if batch.insert_leveled(h, phase as u64 + 1) == Admission::Fresh {
                                    mine.push(h);
                                }
                            }
                            drop(batch);
                            *wins[w].lock().unwrap() = mine;
                        });
                    }
                });
                for w in wins {
                    won.extend(w.into_inner().unwrap());
                }
                set.spill_to_disk().expect("phase spill");
            }
            let mut reference: HashSet<u64> = HashSet::new();
            for phase in 0..3 {
                for w in 0..workers {
                    for k in 0..per_worker {
                        reference.insert(LockFreeExplored::normalize(key(phase, w, k)));
                    }
                }
            }
            let distinct: HashSet<u64> = won
                .iter()
                .map(|&h| LockFreeExplored::normalize(h))
                .collect();
            assert_eq!(
                won.len(),
                distinct.len(),
                "no hash admitted twice across spill boundaries (compact={compact})"
            );
            assert_eq!(distinct, reference, "wins cover exactly the universe");
            assert_eq!(set.len(), reference.len());
            assert!(set.spill_count() >= 3);
            for &h in &reference {
                assert!(set.contains(h));
            }
        }
    }

    #[test]
    fn steal_queues_cover_all_work_exactly_once() {
        let q = StealQueues::split(4, 103);
        let seen = Mutex::new(vec![0usize; 103]);
        std::thread::scope(|s| {
            for w in 0..4 {
                let q = &q;
                let seen = &seen;
                s.spawn(move || {
                    while let Some(i) = q.next(w) {
                        seen.lock().unwrap()[i] += 1;
                    }
                });
            }
        });
        assert!(seen.lock().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn steal_queues_let_idle_workers_steal() {
        // All work lands in worker 0's chunk range when n < workers.
        let q = StealQueues::split(8, 3);
        // Worker 7 owns nothing but can still obtain work.
        assert!(q.next(7).is_some());
        assert!(q.next(7).is_some());
        assert!(q.next(7).is_some());
        assert!(q.next(0).is_none());
    }
}
