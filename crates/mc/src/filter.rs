//! Event filters — the corrective actions of execution steering.
//!
//! "Upon noticing that running a certain handler can lead to an erroneous
//! state, CrystalBall installs an event filter, which temporarily blocks the
//! invocation of the state machine handler for messages from the relevant
//! sender. ... In case of network messages, this filter contains a message
//! type, message source and the destination. For other events, e.g., a
//! local timer event or application call, the filter just contains the
//! identity of the handler" (§3.3/§4).
//!
//! Filters are used in two places: the live runtime consults them before
//! invoking handlers, and the checker consults them while exploring (to
//! evaluate the safety of a candidate filter, §3.3 "Ensuring Safety of Event
//! Filter Actions").

use std::fmt;

use cb_model::codec::{Decode, DecodeError, Encode, Reader};
use cb_model::{EventKey, NodeId};

/// One installable event filter.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum EventFilter {
    /// Block delivery of messages of `kind` from `src` to `dst`. With
    /// `reset_connection`, additionally break the TCP connection with the
    /// sender ("an alternative to simple blocking is to additionally reset
    /// the connection with the sender", §3.3).
    Message {
        /// `Protocol::message_kind` of the blocked message.
        kind: &'static str,
        /// Blocked sender.
        src: NodeId,
        /// Node on which the filter is installed.
        dst: NodeId,
        /// Whether the filter also resets the connection with `src`.
        reset_connection: bool,
    },
    /// Block (reschedule, in the live runtime) an internal handler at
    /// `node`. "Unlike the network messages that the filter drops when it
    /// triggers, the timer events are rescheduled" (§4).
    Handler {
        /// `Protocol::action_kind` of the blocked handler.
        kind: &'static str,
        /// Node on which the filter is installed.
        node: NodeId,
    },
}

impl EventFilter {
    /// Does this filter block an event with the given key?
    pub fn matches(&self, key: &EventKey) -> bool {
        match (self, key) {
            (
                EventFilter::Message { kind, src, dst, .. },
                EventKey::Message {
                    kind: k,
                    src: s,
                    dst: d,
                },
            ) => kind == k && src == s && dst == d,
            (EventFilter::Handler { kind, node }, EventKey::Action { kind: k, node: n }) => {
                kind == k && node == n
            }
            _ => false,
        }
    }

    /// The node this filter protects (where it must be installed).
    pub fn install_at(&self) -> NodeId {
        match self {
            EventFilter::Message { dst, .. } => *dst,
            EventFilter::Handler { node, .. } => *node,
        }
    }

    /// True if triggering the filter also resets the offending connection.
    pub fn resets_connection(&self) -> bool {
        matches!(
            self,
            EventFilter::Message {
                reset_connection: true,
                ..
            }
        )
    }

    /// The peer whose connection is reset when the filter triggers, if any.
    pub fn reset_peer(&self) -> Option<NodeId> {
        match self {
            EventFilter::Message {
                src,
                reset_connection: true,
                ..
            } => Some(*src),
            _ => None,
        }
    }
}

/// Wire encoding, used when a checker ships a filter-install push to a
/// live node (`cb-live`). Kinds travel as plain strings; decoding resolves
/// them back to `'static` entries against the receiving protocol's kind
/// tables ([`cb_model::Protocol::message_kinds`] /
/// [`cb_model::Protocol::action_kinds`]), so a filter naming a kind the
/// protocol never produces is rejected instead of silently never matching.
impl Encode for EventFilter {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            EventFilter::Message {
                kind,
                src,
                dst,
                reset_connection,
            } => {
                buf.push(0);
                kind.to_string().encode(buf);
                src.encode(buf);
                dst.encode(buf);
                reset_connection.encode(buf);
            }
            EventFilter::Handler { kind, node } => {
                buf.push(1);
                kind.to_string().encode(buf);
                node.encode(buf);
            }
        }
    }
}

fn resolve_kind(s: &str, table: &'static [&'static str]) -> Result<&'static str, DecodeError> {
    table
        .iter()
        .find(|k| **k == s)
        .copied()
        .ok_or(DecodeError::UnknownKind)
}

impl EventFilter {
    /// Decodes one filter, resolving kind strings against the receiving
    /// protocol's kind tables (the inverse of the [`Encode`] impl).
    pub fn decode_resolved(
        r: &mut Reader<'_>,
        message_kinds: &'static [&'static str],
        action_kinds: &'static [&'static str],
    ) -> Result<Self, DecodeError> {
        Ok(match r.byte()? {
            0 => {
                let kind = String::decode(r)?;
                EventFilter::Message {
                    kind: resolve_kind(&kind, message_kinds)?,
                    src: NodeId::decode(r)?,
                    dst: NodeId::decode(r)?,
                    reset_connection: bool::decode(r)?,
                }
            }
            1 => {
                let kind = String::decode(r)?;
                EventFilter::Handler {
                    kind: resolve_kind(&kind, action_kinds)?,
                    node: NodeId::decode(r)?,
                }
            }
            t => return Err(DecodeError::BadTag(t)),
        })
    }

    /// Decodes a length-prefixed list of filters (the body of a
    /// filter-install push) from a whole buffer.
    pub fn decode_list(
        bytes: &[u8],
        message_kinds: &'static [&'static str],
        action_kinds: &'static [&'static str],
    ) -> Result<Vec<Self>, DecodeError> {
        let mut r = Reader::new(bytes);
        let n = r.length()?;
        let mut out = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            out.push(Self::decode_resolved(&mut r, message_kinds, action_kinds)?);
        }
        if r.is_empty() {
            Ok(out)
        } else {
            Err(DecodeError::TrailingBytes(r.remaining()))
        }
    }
}

impl fmt::Display for EventFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventFilter::Message {
                kind,
                src,
                dst,
                reset_connection,
            } => write!(
                f,
                "block {kind} {src}→{dst}{}",
                if *reset_connection { " +RST" } else { "" }
            ),
            EventFilter::Handler { kind, node } => write!(f, "block {kind}@{node}"),
        }
    }
}

/// A set of filters, checked together. "CrystalBall ... removes the filters
/// from the runtime after every model checking run" (§3.3), so sets are
/// cheap to build and discard.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FilterSet {
    filters: Vec<EventFilter>,
}

impl FromIterator<EventFilter> for FilterSet {
    fn from_iter<I: IntoIterator<Item = EventFilter>>(filters: I) -> Self {
        FilterSet {
            filters: filters.into_iter().collect(),
        }
    }
}

impl FilterSet {
    /// An empty set (blocks nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a filter if not already present.
    pub fn install(&mut self, f: EventFilter) {
        if !self.filters.contains(&f) {
            self.filters.push(f);
        }
    }

    /// Removes every filter.
    pub fn clear(&mut self) {
        self.filters.clear();
    }

    /// Number of installed filters.
    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// True if no filter is installed.
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }

    /// The first filter blocking an event with this key, if any.
    pub fn matching(&self, key: &EventKey) -> Option<&EventFilter> {
        self.filters.iter().find(|f| f.matches(key))
    }

    /// Does any filter block an event with this key?
    pub fn blocks(&self, key: &EventKey) -> bool {
        self.matching(key).is_some()
    }

    /// Iterates over the installed filters.
    pub fn iter(&self) -> impl Iterator<Item = &EventFilter> {
        self.filters.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg_key(kind: &'static str, src: u32, dst: u32) -> EventKey {
        EventKey::Message {
            kind,
            src: NodeId(src),
            dst: NodeId(dst),
        }
    }

    #[test]
    fn message_filter_matches_exact_triple() {
        let f = EventFilter::Message {
            kind: "Join",
            src: NodeId(13),
            dst: NodeId(1),
            reset_connection: true,
        };
        assert!(f.matches(&msg_key("Join", 13, 1)));
        assert!(!f.matches(&msg_key("Join", 13, 2)));
        assert!(!f.matches(&msg_key("Join", 12, 1)));
        assert!(!f.matches(&msg_key("JoinReply", 13, 1)));
        assert!(!f.matches(&EventKey::Reset { node: NodeId(13) }));
        assert_eq!(f.install_at(), NodeId(1));
        assert_eq!(f.reset_peer(), Some(NodeId(13)));
        assert!(f.resets_connection());
        assert_eq!(f.to_string(), "block Join n13→n1 +RST");
    }

    #[test]
    fn handler_filter_matches_kind_and_node() {
        let f = EventFilter::Handler {
            kind: "Stabilize",
            node: NodeId(5),
        };
        assert!(f.matches(&EventKey::Action {
            kind: "Stabilize",
            node: NodeId(5)
        }));
        assert!(!f.matches(&EventKey::Action {
            kind: "Stabilize",
            node: NodeId(6)
        }));
        assert!(!f.matches(&EventKey::Action {
            kind: "Recovery",
            node: NodeId(5)
        }));
        assert_eq!(f.install_at(), NodeId(5));
        assert_eq!(f.reset_peer(), None);
        assert!(!f.resets_connection());
        assert_eq!(f.to_string(), "block Stabilize@n5");
    }

    #[test]
    fn filter_set_dedups_and_clears() {
        let mut set = FilterSet::new();
        assert!(set.is_empty());
        let f = EventFilter::Handler {
            kind: "T",
            node: NodeId(1),
        };
        set.install(f.clone());
        set.install(f.clone());
        assert_eq!(set.len(), 1);
        assert!(set.blocks(&EventKey::Action {
            kind: "T",
            node: NodeId(1)
        }));
        assert_eq!(
            set.matching(&EventKey::Action {
                kind: "T",
                node: NodeId(1)
            }),
            Some(&f)
        );
        assert!(!set.blocks(&EventKey::Action {
            kind: "T",
            node: NodeId(2)
        }));
        set.clear();
        assert!(set.is_empty());
    }

    #[test]
    fn wire_codec_roundtrips_against_kind_tables() {
        const MSG_KINDS: &[&str] = &["Join", "JoinReply"];
        const ACT_KINDS: &[&str] = &["RecoveryTimer"];
        let filters = vec![
            EventFilter::Message {
                kind: "Join",
                src: NodeId(13),
                dst: NodeId(1),
                reset_connection: true,
            },
            EventFilter::Handler {
                kind: "RecoveryTimer",
                node: NodeId(5),
            },
        ];
        let bytes = filters.to_bytes();
        let decoded = EventFilter::decode_list(&bytes, MSG_KINDS, ACT_KINDS).unwrap();
        assert_eq!(decoded, filters);
        // The resolved kind is the table's entry, so pointer-free string
        // comparison in `matches` keeps working.
        assert!(decoded[0].matches(&msg_key("Join", 13, 1)));
    }

    #[test]
    fn wire_codec_rejects_unknown_kinds_and_garbage() {
        use cb_model::DecodeError;
        const MSG_KINDS: &[&str] = &["Ping"];
        let foreign = vec![EventFilter::Message {
            kind: "Prepare", // a kind the receiving table does not list
            src: NodeId(0),
            dst: NodeId(1),
            reset_connection: false,
        }];
        assert_eq!(
            EventFilter::decode_list(&foreign.to_bytes(), MSG_KINDS, &[]),
            Err(DecodeError::UnknownKind)
        );
        // Garbage variant tag.
        assert_eq!(
            EventFilter::decode_list(&[1, 9], MSG_KINDS, &[]),
            Err(DecodeError::BadTag(9))
        );
        // Truncated buffers fail cleanly at every cut.
        let ok = vec![EventFilter::Handler {
            kind: "Ping",
            node: NodeId(2),
        }];
        let bytes = ok.to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                EventFilter::decode_list(&bytes[..cut], &[], &["Ping"]).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn filter_set_from_iter_checks_all() {
        let set = FilterSet::from_iter([
            EventFilter::Handler {
                kind: "A",
                node: NodeId(1),
            },
            EventFilter::Message {
                kind: "M",
                src: NodeId(2),
                dst: NodeId(3),
                reset_connection: false,
            },
        ]);
        assert_eq!(set.len(), 2);
        assert_eq!(set.iter().count(), 2);
        assert!(set.blocks(&msg_key("M", 2, 3)));
        assert!(set.blocks(&EventKey::Action {
            kind: "A",
            node: NodeId(1)
        }));
    }
}
