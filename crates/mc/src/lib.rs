//! # cb-mc — model checking engines
//!
//! Implements both state-space exploration algorithms of the CrystalBall
//! paper over the `cb-model` system model:
//!
//! * **Exhaustive search** ([`find_errors`]) — the standard breadth-first
//!   search with state-hash caching of Fig. 5, representing the MaceMC
//!   baseline the paper compares against (§5.3, Fig. 12);
//! * **Consequence prediction** ([`find_consequences`]) — Fig. 8: the same
//!   loop, except that *local actions of node n in state s are explored at
//!   most once globally* (the `localExplored` test). "Although simple, the
//!   idea ... has a profound impact on the search depth that the model
//!   checker can feasibly reach with a limited time budget" (§3.2).
//! * **Random walk** ([`search::random_walk`]) — the MaceMC random-walk mode
//!   used as a second baseline in §5.3.
//!
//! Shared machinery:
//!
//! * [`SearchConfig`] — stop criteria (depth / states / wall-clock deadline,
//!   the paper's `StopCriterion`), environment-event options, event filters
//!   honored during exploration (for the filter-safety check of §3.3);
//! * [`SearchOutcome`] / [`FoundViolation`] — violations reported "in the
//!   form of a sequence of events that leads to an erroneous state" (§3),
//!   reconstructed from a parent-pointer arena;
//! * [`SearchStats`] — visited/enqueued counts, per-depth tallies, the
//!   memory accounting behind Fig. 15/16, and the parallel coordinator's
//!   `merge_busy`/`merge_wait` split;
//! * [`replay_path`] — re-checks a previously discovered error path against
//!   a *new* snapshot by replaying only timer/application events and
//!   following message causality (§4 "Replaying Past Erroneous Paths");
//! * [`EventFilter`] — the runtime-installable description of events to
//!   block, shared with the `crystalball` controller;
//! * [`WorkerPool`] — a shared, scoped worker pool: the parallel engine's
//!   phases, known-path replays, filter-safety re-checks, and concurrent
//!   checker shards all multiplex their independent work over one set of
//!   threads ([`Searcher::search_on`] / [`Searcher::run_parallel_pooled`]).

pub mod filter;
pub mod frontier;
pub mod parallel;
pub mod pool;
pub mod replay;
pub mod report;
pub mod search;
pub mod stats;

pub use filter::{EventFilter, FilterSet};
pub use frontier::{
    Admission, ExploredBatch, FifoFrontier, Frontier, FrontierItem, LockFreeExplored, StealQueues,
};
pub use parallel::{
    find_consequences_parallel, find_errors_parallel, ParallelConfig, MAX_MERGE_SHARDS,
};
pub use pool::{PoolScope, WorkerPool};
pub use replay::{replay_path, ReplayOutcome};
pub use report::{FoundViolation, PathStep, SearchOutcome, StopReason};
pub use search::{find_consequences, find_errors, random_walk, Engine, SearchConfig, Searcher};
pub use stats::SearchStats;
