//! The search engines: exhaustive BFS (Fig. 5), consequence prediction
//! (Fig. 8), the random-walk baseline, and the parallel work-stealing
//! engine (`crate::parallel`).
//!
//! Both BFS variants share one loop; the *only* semantic difference is the
//! `localExplored` test, exactly as in the paper: "if we omitted the test in
//! Line 16, the algorithm would reduce precisely to Figure 5" (§3.2). That
//! one-line difference survives every engine: the sequential loop gates
//! per-node expansion through a `localExplored` claim, and the parallel
//! engine performs the same claims in the same canonical order during its
//! per-level sequential phase (see `crate::parallel` for the phase
//! breakdown), so Fig. 5 vs Fig. 8 remains exactly the presence or absence
//! of that gate.
//!
//! Deviations from the pseudocode, called out for reviewers:
//!
//! * `explored` hashes are recorded at **enqueue** time rather than dequeue
//!   time, so the frontier never holds duplicates (Fig. 5 as written may
//!   re-enqueue a state reached along two paths before either is popped;
//!   semantics are unchanged, memory is strictly better). The sequential
//!   engine keeps one `HashSet`; the parallel engine uses the lock-free
//!   concurrent table ([`crate::LockFreeExplored`]) with the same
//!   enqueue-time discipline — workers race successor hashes in with one
//!   CAS each, exactly one wins, and a streamed canonical merge assigns
//!   each newly admitted state its canonical (first-in-BFS-order) parent,
//!   so the recorded paths match the sequential engine's bit for bit.
//! * States that violate a property are reported but **not expanded**:
//!   CrystalBall consumes the shallowest path to a violation (for steering
//!   and replay), and spending the runtime budget on post-violation suffixes
//!   would only delay finding distinct violations.

use std::collections::HashSet;
use std::mem::size_of;
use std::time::{Duration, Instant};

use cb_model::{
    apply_event, Event, ExploreOptions, GlobalState, NodeId, PropertySet, Protocol, TraceStep,
};

use crate::filter::FilterSet;
use crate::frontier::{FifoFrontier, Frontier, FrontierItem};
use crate::parallel::ParallelConfig;
use crate::report::{FoundViolation, PathStep, SearchOutcome, StopReason};
use crate::stats::SearchStats;

// The same scrapeable families the parallel engine records (the registry
// deduplicates by name, so both engines feed one core): live deployments
// default to the sequential engine, and its searches must show up on the
// metrics plane too.
static M_STATES_VISITED: cb_obs::metrics::Counter = cb_obs::metrics::Counter::new(
    "cb_mc_states_visited_total",
    "states visited across all searches",
);
static M_EXPLORED_RESIDENT: cb_obs::metrics::Gauge = cb_obs::metrics::Gauge::new(
    "cb_mc_explored_resident_bytes",
    "explored-set bytes resident in memory after the last search",
);

/// Stop criteria and exploration options for one search run — the paper's
/// `StopCriterion` plus CrystalBall-specific knobs.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Maximum path length from the start state (levels in Fig. 12).
    pub max_depth: Option<usize>,
    /// Budget of dequeued (visited) states.
    pub max_states: Option<usize>,
    /// Wall-clock budget ("CrystalBall identified inconsistencies by
    /// running consequence prediction ... for up to several hundred
    /// seconds", §5.2).
    pub deadline: Option<Duration>,
    /// Which environment events to explore besides deliveries and actions.
    pub explore: ExploreOptions,
    /// Whether to apply consequence prediction's `localExplored` pruning.
    pub prune_local: bool,
    /// Stop after this many violations (the controller wants 1).
    pub max_violations: usize,
    /// Events suppressed during exploration; used to evaluate candidate
    /// event filters (§3.3 "Checking Safety of Event Filters").
    pub filters: FilterSet,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            max_depth: None,
            max_states: Some(200_000),
            deadline: None,
            explore: ExploreOptions::default(),
            prune_local: true,
            max_violations: 1,
            filters: FilterSet::new(),
        }
    }
}

impl SearchConfig {
    /// Builder: set the depth bound.
    pub fn with_depth(mut self, d: usize) -> Self {
        self.max_depth = Some(d);
        self
    }

    /// Builder: set the visited-state budget.
    pub fn with_states(mut self, n: usize) -> Self {
        self.max_states = Some(n);
        self
    }

    /// Builder: set the wall-clock budget.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Builder: set exploration options.
    pub fn with_explore(mut self, e: ExploreOptions) -> Self {
        self.explore = e;
        self
    }

    /// Builder: set the violation budget.
    pub fn with_violations(mut self, n: usize) -> Self {
        self.max_violations = n.max(1);
        self
    }

    /// Builder: install exploration-time filters.
    pub fn with_filters(mut self, f: FilterSet) -> Self {
        self.filters = f;
        self
    }
}

/// Which exploration engine drives a search run.
#[derive(Clone, Debug, Default)]
pub enum Engine {
    /// The single-threaded FIFO loop of Fig. 5 / Fig. 8.
    #[default]
    Sequential,
    /// The level-synchronous work-stealing engine: same violation set and
    /// canonical paths, expansion fanned out over a worker pool.
    Parallel(ParallelConfig),
    /// The MaceMC random-walk baseline (§5.3).
    RandomWalk {
        /// PRNG seed (runs replay bit-identically per seed).
        seed: u64,
        /// Maximum events per walk before restarting from the start state.
        max_walk_len: usize,
    },
}

/// Parent-pointer record for path reconstruction.
pub(crate) struct ArenaRec<P: Protocol> {
    pub(crate) parent: Option<usize>,
    pub(crate) event: Event<P>,
    pub(crate) step: TraceStep,
}

/// A reusable search driver binding a protocol, its safety properties, and
/// a configuration.
pub struct Searcher<'a, P: Protocol> {
    pub(crate) protocol: &'a P,
    pub(crate) props: &'a PropertySet<P>,
    /// The active configuration (mutable between runs).
    pub config: SearchConfig,
}

/// Enumerates the events to explore from `state` under `config`, in the
/// canonical deterministic order every engine shares: in-flight items by
/// index (delivery before drop), then nodes in id order (actions in
/// `enabled_actions` order, then resets, then peer errors).
///
/// `allow_node` is the `localExplored` gate of Fig. 8: when it returns
/// false for a node, that node's *entire* per-node block (actions, resets,
/// peer errors) is skipped. Exhaustive search passes a constant-true gate.
/// Events suppressed by installed filters are tallied into `filtered`.
pub(crate) fn enumerate_gated<P: Protocol>(
    protocol: &P,
    config: &SearchConfig,
    state: &GlobalState<P>,
    mut allow_node: impl FnMut(NodeId) -> bool,
    filtered: &mut usize,
) -> Vec<Event<P>> {
    let mut events: Vec<Event<P>> = Vec::new();
    let mut push = |ev: Event<P>, filtered: &mut usize| {
        if let Some(key) = ev.key(state) {
            if config.filters.blocks(&key) {
                *filtered += 1;
                return;
            }
        }
        events.push(ev);
    };

    // Message deliveries are always explored (Fig. 8 line 13).
    for index in 0..state.inflight.len() {
        push(Event::Deliver { index }, filtered);
        if config.explore.drops {
            push(Event::Drop { index }, filtered);
        }
    }

    // Local actions: only for fresh local states under consequence
    // prediction (Fig. 8 lines 17–20).
    let mut acts = Vec::new();
    for (&node, slot) in &state.nodes {
        if !allow_node(node) {
            continue;
        }
        acts.clear();
        protocol.enabled_actions(node, &slot.state, &mut acts);
        for action in acts.drain(..) {
            push(Event::Action { node, action }, filtered);
        }
        if config.explore.resets {
            push(
                Event::Reset {
                    node,
                    notify: false,
                },
                filtered,
            );
            if !slot.conns.is_empty() {
                push(Event::Reset { node, notify: true }, filtered);
            }
        }
        if config.explore.peer_errors {
            for &peer in slot.conns.keys() {
                push(Event::PeerError { node, peer }, filtered);
            }
        }
    }
    events
}

impl<'a, P: Protocol> Searcher<'a, P> {
    /// Creates a searcher.
    pub fn new(protocol: &'a P, props: &'a PropertySet<P>, config: SearchConfig) -> Self {
        M_STATES_VISITED.touch();
        M_EXPLORED_RESIDENT.touch();
        Searcher {
            protocol,
            props,
            config,
        }
    }

    /// Runs the search with the given engine. All engines agree on the
    /// violation set and on the canonical (shallowest, path-lexicographic
    /// first) counterexample paths, except the random walk, which is a
    /// sampling baseline.
    pub fn search(&self, start: &GlobalState<P>, engine: &Engine) -> SearchOutcome<P> {
        match engine {
            Engine::Sequential => self.run(start),
            Engine::Parallel(par) => self.run_parallel(start, par),
            Engine::RandomWalk { seed, max_walk_len } => {
                self.random_walk(start, *seed, *max_walk_len)
            }
        }
    }

    /// [`Searcher::search`], except that a parallel engine draws its
    /// workers from the shared `pool` instead of spawning its own — the
    /// entry point for callers running several independent searches
    /// (prediction, replays, safety re-checks, checker shards) over one
    /// set of threads. With `None`, behaves exactly like [`Searcher::search`].
    pub fn search_on(
        &self,
        start: &GlobalState<P>,
        engine: &Engine,
        pool: Option<&crate::pool::WorkerPool>,
    ) -> SearchOutcome<P> {
        match (engine, pool) {
            (Engine::Parallel(par), Some(pool)) => self.run_parallel_pooled(start, par, pool),
            _ => self.search(start, engine),
        }
    }

    /// Runs the breadth-first search from `start`: Fig. 5 when
    /// `config.prune_local` is false, Fig. 8 (consequence prediction) when
    /// true.
    pub fn run(&self, start: &GlobalState<P>) -> SearchOutcome<P> {
        let t0 = Instant::now();
        let mut stats = SearchStats::default();
        let mut violations = Vec::new();

        let mut arena: Vec<ArenaRec<P>> = Vec::new();
        let mut explored: HashSet<u64> = HashSet::new();
        let mut local_explored: HashSet<u64> = HashSet::new();
        let mut frontier: FifoFrontier<P> = FifoFrontier::new();
        let mut frontier_bytes = 0usize;
        let mut depth_truncated = false;

        explored.insert(start.state_hash());
        frontier_bytes += approx_state_bytes(start);
        stats.peak_frontier_bytes = frontier_bytes;
        frontier.push(FrontierItem {
            state: start.clone(),
            rec: None,
            depth: 0,
        });
        stats.states_enqueued += 1;

        let mut stopped = StopReason::Exhausted;

        'search: while let Some(FrontierItem { state, rec, depth }) = frontier.pop() {
            frontier_bytes = frontier_bytes.saturating_sub(approx_state_bytes(&state));
            if let Some(deadline) = self.config.deadline {
                if t0.elapsed() >= deadline {
                    stopped = StopReason::Deadline;
                    break 'search;
                }
            }
            if let Some(max) = self.config.max_states {
                if stats.states_visited >= max {
                    stopped = StopReason::StateLimit;
                    break 'search;
                }
            }
            stats.record_visit(depth);

            // Property check on the dequeued state (Fig. 5 line 7).
            if let Some(violation) = self.props.check(&state) {
                stats.violations_found += 1;
                violations.push(FoundViolation {
                    violation,
                    path: reconstruct(&arena, rec),
                    depth,
                });
                if violations.len() >= self.config.max_violations {
                    stopped = StopReason::ViolationLimit;
                    break 'search;
                }
                // Do not expand violating states (see module docs).
                continue;
            }

            if self.config.max_depth.is_some_and(|d| depth >= d) {
                depth_truncated = true;
                continue;
            }

            // Expand: enumerate events, honoring filters and (optionally)
            // the localExplored pruning of Fig. 8.
            let mut filtered = 0usize;
            let mut prunes = 0usize;
            let events = if self.config.prune_local {
                enumerate_gated(
                    self.protocol,
                    &self.config,
                    &state,
                    |node| {
                        let lh = state.local_hash(node).expect("node exists");
                        if local_explored.insert(lh) {
                            true
                        } else {
                            prunes += 1;
                            false
                        }
                    },
                    &mut filtered,
                )
            } else {
                enumerate_gated(self.protocol, &self.config, &state, |_| true, &mut filtered)
            };
            stats.filtered_events += filtered;
            stats.local_prunes += prunes;
            for event in events {
                let mut next = state.clone();
                let step = apply_event(self.protocol, &mut next, &event);
                let h = next.state_hash();
                if !explored.insert(h) {
                    stats.duplicates_hit += 1;
                    continue;
                }
                arena.push(ArenaRec {
                    parent: rec,
                    event,
                    step,
                });
                let child_rec = Some(arena.len() - 1);
                frontier_bytes += approx_state_bytes(&next);
                stats.peak_frontier_bytes = stats.peak_frontier_bytes.max(frontier_bytes);
                frontier.push(FrontierItem {
                    state: next,
                    rec: child_rec,
                    depth: depth + 1,
                });
                stats.states_enqueued += 1;
            }
        }

        if stopped == StopReason::Exhausted && depth_truncated {
            stopped = StopReason::DepthLimit;
        }
        stats.elapsed = t0.elapsed();
        stats.tree_bytes = arena.len() * size_of::<ArenaRec<P>>()
            + (explored.len() + local_explored.len()) * 2 * size_of::<u64>();
        M_STATES_VISITED.add(stats.states_visited as u64);
        M_EXPLORED_RESIDENT
            .set(((explored.len() + local_explored.len()) * 2 * size_of::<u64>()) as u64);
        SearchOutcome {
            violations,
            stats,
            stopped,
        }
    }

    /// The MaceMC random-walk baseline (§5.3): repeatedly walks a random
    /// path of at most `max_walk_len` events from `start`, checking
    /// properties after every step, until a stop criterion fires.
    pub fn random_walk(
        &self,
        start: &GlobalState<P>,
        seed: u64,
        max_walk_len: usize,
    ) -> SearchOutcome<P> {
        let t0 = Instant::now();
        let mut rng = SplitMix64::new(seed);
        let mut stats = SearchStats::default();
        let mut violations = Vec::new();
        let stopped;

        'outer: loop {
            let mut state = start.clone();
            let mut path: Vec<PathStep<P>> = Vec::new();
            for depth in 0..max_walk_len {
                if let Some(deadline) = self.config.deadline {
                    if t0.elapsed() >= deadline {
                        stopped = StopReason::Deadline;
                        break 'outer;
                    }
                }
                if let Some(max) = self.config.max_states {
                    if stats.states_visited >= max {
                        stopped = StopReason::StateLimit;
                        break 'outer;
                    }
                }
                // The random walk is the unpruned baseline: constant-true
                // gate, no `localExplored`.
                let mut filtered = 0usize;
                let events =
                    enumerate_gated(self.protocol, &self.config, &state, |_| true, &mut filtered);
                stats.filtered_events += filtered;
                if events.is_empty() {
                    break; // dead end; restart the walk
                }
                let mut events = events;
                let event = events.swap_remove((rng.next() as usize) % events.len());
                let step = apply_event(self.protocol, &mut state, &event);
                path.push(PathStep { event, step });
                stats.record_visit(depth + 1);
                if let Some(violation) = self.props.check(&state) {
                    stats.violations_found += 1;
                    violations.push(FoundViolation {
                        violation,
                        depth: path.len(),
                        path: path.clone(),
                    });
                    if violations.len() >= self.config.max_violations {
                        stopped = StopReason::ViolationLimit;
                        break 'outer;
                    }
                    break; // restart after a violation
                }
            }
        }
        stats.elapsed = t0.elapsed();
        M_STATES_VISITED.add(stats.states_visited as u64);
        SearchOutcome {
            violations,
            stats,
            stopped,
        }
    }
}

/// Runs the exhaustive search of Fig. 5 (the MaceMC baseline).
pub fn find_errors<P: Protocol>(
    protocol: &P,
    props: &PropertySet<P>,
    start: &GlobalState<P>,
    config: SearchConfig,
) -> SearchOutcome<P> {
    Searcher::new(
        protocol,
        props,
        SearchConfig {
            prune_local: false,
            ..config
        },
    )
    .run(start)
}

/// Runs consequence prediction (Fig. 8) — CrystalBall's online algorithm.
pub fn find_consequences<P: Protocol>(
    protocol: &P,
    props: &PropertySet<P>,
    start: &GlobalState<P>,
    config: SearchConfig,
) -> SearchOutcome<P> {
    Searcher::new(
        protocol,
        props,
        SearchConfig {
            prune_local: true,
            ..config
        },
    )
    .run(start)
}

/// Runs the random-walk baseline of §5.3.
pub fn random_walk<P: Protocol>(
    protocol: &P,
    props: &PropertySet<P>,
    start: &GlobalState<P>,
    config: SearchConfig,
    seed: u64,
    max_walk_len: usize,
) -> SearchOutcome<P> {
    Searcher::new(protocol, props, config).random_walk(start, seed, max_walk_len)
}

pub(crate) fn reconstruct<P: Protocol>(
    arena: &[ArenaRec<P>],
    mut rec: Option<usize>,
) -> Vec<PathStep<P>> {
    let mut path = Vec::new();
    while let Some(i) = rec {
        let r = &arena[i];
        path.push(PathStep {
            event: r.event.clone(),
            step: r.step.clone(),
        });
        rec = r.parent;
    }
    path.reverse();
    path
}

/// Rough heap footprint of a global state held on the frontier.
pub(crate) fn approx_state_bytes<P: Protocol>(gs: &GlobalState<P>) -> usize {
    let per_node = size_of::<cb_model::NodeSlot<P::State>>() + 2 * size_of::<u64>();
    let conns: usize = gs.nodes.values().map(|s| s.conns.len() * 12).sum();
    size_of::<GlobalState<P>>()
        + gs.nodes.len() * per_node
        + conns
        + gs.inflight.len() * size_of::<cb_model::InFlight<P::Message>>()
}

/// Tiny deterministic PRNG (SplitMix64) so the random-walk baseline needs no
/// external dependency and replays bit-identically from a seed.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_model::testproto::{max_pings_property, Ping};
    use cb_model::NodeId;

    fn sys(n: u32, kick_enabled: bool) -> (Ping, GlobalState<Ping>) {
        let cfg = Ping {
            kick_target: NodeId(0),
            kick_enabled,
        };
        let gs = GlobalState::init(&cfg, (0..n).map(NodeId));
        (cfg, gs)
    }

    fn props(limit: u32) -> PropertySet<Ping> {
        PropertySet::new().with(max_pings_property(limit))
    }

    fn quiet() -> SearchConfig {
        SearchConfig {
            explore: ExploreOptions::minimal(),
            ..SearchConfig::default()
        }
    }

    #[test]
    fn finds_violation_at_expected_depth() {
        // Node 0 is violated after 2 pings; each ping takes a Kick action
        // plus a delivery, so the shallowest violating path has 4 events.
        let (cfg, gs) = sys(3, true);
        let props = props(2);
        let out = find_errors(&cfg, &props, &gs, quiet());
        let v = out.first().expect("violation found");
        assert_eq!(v.depth, 4);
        assert_eq!(v.violation.node, Some(NodeId(0)));
        assert_eq!(out.stopped, StopReason::ViolationLimit);
        assert!(out.stats.states_visited > 0);
        assert!(out.stats.tree_bytes > 0);
    }

    #[test]
    fn consequence_prediction_finds_same_violation() {
        let (cfg, gs) = sys(3, true);
        let props = props(2);
        let out = find_consequences(&cfg, &props, &gs, quiet());
        let v = out.first().expect("violation found");
        assert_eq!(v.depth, 4, "CP reaches the same shallowest violation");
        assert!(out.stats.local_prunes > 0, "pruning engaged");
    }

    #[test]
    fn consequence_prediction_explores_fewer_states() {
        let (cfg, gs) = sys(4, true);
        // No violation reachable: exhaust both searches at a fixed depth.
        let props = props(u32::MAX);
        let limit = |prune| SearchConfig {
            explore: ExploreOptions::minimal(),
            prune_local: prune,
            max_depth: Some(5),
            max_states: Some(1_000_000),
            ..SearchConfig::default()
        };
        let bfs = find_errors(&cfg, &props, &gs, limit(false));
        let cp = find_consequences(&cfg, &props, &gs, limit(true));
        assert!(
            cp.stats.states_visited < bfs.stats.states_visited,
            "CP {} should visit fewer states than BFS {}",
            cp.stats.states_visited,
            bfs.stats.states_visited
        );
        assert!(cp.is_clean() && bfs.is_clean());
    }

    #[test]
    fn consequence_prediction_covers_all_depth_one_successors() {
        // "consequence prediction explores all possible transitions from the
        // initial state (because at that point localExplored is empty)" §3.2
        let (cfg, gs) = sys(3, true);
        let props = props(u32::MAX);
        let one = |prune| SearchConfig {
            explore: ExploreOptions::minimal(),
            prune_local: prune,
            max_depth: Some(1),
            ..SearchConfig::default()
        };
        let bfs = find_errors(&cfg, &props, &gs, one(false));
        let cp = find_consequences(&cfg, &props, &gs, one(true));
        assert_eq!(bfs.stats.states_enqueued, cp.stats.states_enqueued);
    }

    #[test]
    fn path_replays_to_the_violation() {
        let (cfg, gs) = sys(3, true);
        let props = props(2);
        let out = find_errors(&cfg, &props, &gs, quiet());
        let v = out.first().unwrap();
        // Re-apply the reported path from the start state: must end in a
        // state violating the property.
        let mut state = gs.clone();
        assert!(props.check(&state).is_none());
        for step in &v.path {
            apply_event(&cfg, &mut state, &step.event);
        }
        assert!(
            props.check(&state).is_some(),
            "path reproduces the violation"
        );
    }

    #[test]
    fn depth_limit_reported() {
        let (cfg, gs) = sys(2, true);
        let props = props(u32::MAX);
        let out = find_errors(
            &cfg,
            &props,
            &gs,
            SearchConfig {
                max_depth: Some(2),
                explore: ExploreOptions::minimal(),
                ..quiet()
            },
        );
        assert_eq!(out.stopped, StopReason::DepthLimit);
        assert!(out.stats.max_depth <= 2);
    }

    #[test]
    fn state_budget_respected() {
        let (cfg, gs) = sys(4, true);
        let props = props(u32::MAX);
        let out = find_errors(
            &cfg,
            &props,
            &gs,
            SearchConfig {
                max_states: Some(10),
                explore: ExploreOptions::minimal(),
                ..SearchConfig::default()
            },
        );
        assert_eq!(out.stopped, StopReason::StateLimit);
        assert!(out.stats.states_visited <= 10);
    }

    #[test]
    fn deadline_stops_search() {
        let (cfg, gs) = sys(6, true);
        let props = props(u32::MAX);
        let out = find_errors(
            &cfg,
            &props,
            &gs,
            SearchConfig {
                deadline: Some(Duration::from_millis(0)),
                explore: ExploreOptions::minimal(),
                max_states: None,
                ..SearchConfig::default()
            },
        );
        assert_eq!(out.stopped, StopReason::Deadline);
    }

    #[test]
    fn empty_system_exhausts() {
        let (cfg, gs) = sys(2, false);
        let props = props(u32::MAX);
        let out = find_errors(&cfg, &props, &gs, quiet());
        assert_eq!(out.stopped, StopReason::Exhausted);
        assert_eq!(out.stats.states_visited, 1, "only the start state");
    }

    #[test]
    fn violation_in_start_state_is_reported_at_depth_zero() {
        let (cfg, mut gs) = sys(2, false);
        gs.slot_mut(NodeId(0)).unwrap().state.pings_seen = 100;
        let props = props(2);
        let out = find_errors(&cfg, &props, &gs, quiet());
        let v = out.first().unwrap();
        assert_eq!(v.depth, 0);
        assert!(v.path.is_empty());
    }

    #[test]
    fn filters_suppress_events_during_search() {
        let (cfg, gs) = sys(3, true);
        let props = props(2);
        // Block every Ping delivery to node 0 from node 1 and node 2: the
        // violation becomes unreachable.
        let filters = FilterSet::from_iter([
            crate::EventFilter::Message {
                kind: "Ping",
                src: NodeId(1),
                dst: NodeId(0),
                reset_connection: false,
            },
            crate::EventFilter::Message {
                kind: "Ping",
                src: NodeId(2),
                dst: NodeId(0),
                reset_connection: false,
            },
        ]);
        // Consequence prediction + a state cap keeps this bounded: with the
        // deliveries blocked, BFS would chase ever-growing in-flight bags.
        let out = find_consequences(
            &cfg,
            &props,
            &gs,
            quiet().with_states(5_000).with_filters(filters),
        );
        assert!(
            out.is_clean(),
            "filtered events make the violation unreachable"
        );
        assert!(out.stats.filtered_events > 0);
    }

    #[test]
    fn random_walk_finds_violation_eventually() {
        let (cfg, gs) = sys(2, true);
        let props = props(1);
        let out = random_walk(&cfg, &props, &gs, quiet().with_states(50_000), 7, 20);
        assert!(!out.is_clean(), "random walk stumbles on the shallow bug");
        let v = out.first().unwrap();
        // Walk paths are checked step-by-step, so the reported path ends at
        // the first violating state.
        let mut state = gs.clone();
        for step in &v.path {
            apply_event(&cfg, &mut state, &step.event);
        }
        assert!(props.check(&state).is_some());
    }

    #[test]
    fn random_walk_is_deterministic_per_seed() {
        let (cfg, gs) = sys(2, true);
        let props = props(1);
        let a = random_walk(&cfg, &props, &gs, quiet().with_states(50_000), 7, 20);
        let b = random_walk(&cfg, &props, &gs, quiet().with_states(50_000), 7, 20);
        assert_eq!(a.stats.states_visited, b.stats.states_visited);
        assert_eq!(a.first().map(|v| v.depth), b.first().map(|v| v.depth));
    }

    #[test]
    fn bfs_and_cp_are_deterministic() {
        let (cfg, gs) = sys(3, true);
        let props = props(2);
        let a = find_consequences(&cfg, &props, &gs, quiet());
        let b = find_consequences(&cfg, &props, &gs, quiet());
        assert_eq!(a.stats.states_visited, b.stats.states_visited);
        assert_eq!(a.stats.states_enqueued, b.stats.states_enqueued);
        assert_eq!(
            a.first().map(|v| v.scenario()),
            b.first().map(|v| v.scenario())
        );
    }

    #[test]
    fn builder_methods_compose() {
        let c = SearchConfig::default()
            .with_depth(3)
            .with_states(10)
            .with_deadline(Duration::from_secs(1))
            .with_violations(0)
            .with_explore(ExploreOptions::full());
        assert_eq!(c.max_depth, Some(3));
        assert_eq!(c.max_states, Some(10));
        assert_eq!(c.max_violations, 1, "clamped to at least one");
        assert!(c.explore.drops);
    }

    #[test]
    fn engine_dispatch_matches_direct_calls() {
        let (cfg, gs) = sys(3, true);
        let props = props(2);
        let searcher = Searcher::new(&cfg, &props, quiet());
        let seq = searcher.search(&gs, &Engine::Sequential);
        let par = searcher.search(
            &gs,
            &Engine::Parallel(ParallelConfig {
                workers: 2,
                ..ParallelConfig::default()
            }),
        );
        let walk = searcher.search(
            &gs,
            &Engine::RandomWalk {
                seed: 7,
                max_walk_len: 20,
            },
        );
        assert_eq!(
            seq.first().map(|v| v.scenario()),
            par.first().map(|v| v.scenario())
        );
        assert!(!walk.is_clean());
    }
}
