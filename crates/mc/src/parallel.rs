//! The parallel work-stealing search engine.
//!
//! CrystalBall's checker runs *concurrently with the deployed system*; its
//! usefulness is bounded by how many states per second it can explore
//! before the erroneous event arrives (§4, Fig. 12). This engine fans the
//! hot path of the search — state cloning, handler execution, hashing and
//! property checks — out over a worker pool while keeping the *content* of
//! the result (violation set, counterexample paths, visit counts)
//! bit-identical to the sequential engine, even though thread scheduling
//! is nondeterministic.
//!
//! # Design: level-synchronous BFS with a streamed deterministic merge
//!
//! The engine processes the state graph one BFS level at a time. Each
//! level runs three phases:
//!
//! 1. **Check** (parallel): property-check every state of the level.
//!    Workers pull item indices from [`StealQueues`].
//! 2. **Visit** (sequential, cheap): walk the level in canonical order
//!    (the order the sequential engine would dequeue), applying stop
//!    criteria, recording violations, and — under consequence prediction —
//!    performing the `localExplored` claims of Fig. 8 in exactly the order
//!    the sequential loop would, which pins down *which* state gets to
//!    expand each fresh local state. Produces the list of expansion jobs.
//! 3. **Expand + merge** (overlapped): every job becomes one pool task —
//!    enumerate events, clone the state, run the handler, hash the
//!    successor, and race a single CAS per successor into the
//!    [`LockFreeExplored`] table (stamped with the successor level). The
//!    task streams its edge batch into an order-preserving reorder
//!    buffer; the coordinator consumes batches in canonical job order
//!    *while later jobs are still expanding*, so the canonical
//!    dedup/merge no longer waits for — or buffers — the whole level.
//!    When the next in-order batch is not ready, the coordinator helps by
//!    executing one of its own queued jobs instead of sleeping.
//!
//! The merge applies the sequential engine's enqueue-time dedup in
//! canonical order (job order × event order): the canonically-first edge
//! to each hash admitted this level becomes its parent. Whether a hash
//! was admitted this level is read off the table's level stamp, so the
//! decision needs no level-wide `admitted` set. The surviving clone must
//! be the canonical edge's, too: equal hashes mean equal node states and
//! equal in-flight *multisets*, but not equal in-flight `Vec` order, and
//! that order steers later event enumeration — so when the insert race
//! was won by a non-canonical edge, the merge re-derives the canonical
//! clone from its parent. Reconstructed paths — including the canonical
//! shallowest counterexample, tie-broken by (depth, path-lexicographic
//! order) — and every downstream level then match the sequential engine
//! exactly. Wall-clock-dependent outcomes (deadline stops) are the only
//! nondeterminism that survives.
//!
//! At one worker the engine runs a fully inline fast path: expand and
//! merge interleave per job with no channel, no reorder buffer and no
//! edge buffering at all — the only overhead over the sequential loop is
//! the level vector itself.
//!
//! Differences from the sequential engine, all stats-level: `elapsed` and
//! `peak_frontier_bytes` reflect this engine's level-at-a-time residency
//! (the per-level sum of state footprints) rather than a sliding window,
//! and `merge_busy`/`merge_wait` are populated (split so the
//! coordinator's reorder-buffer stalls are not double-counted as merge
//! cost — see [`SearchStats`]).

use std::collections::HashSet;
use std::mem::size_of;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use cb_model::{apply_event, Event, GlobalState, NodeId, Protocol, TraceStep, Violation};

use crate::frontier::{Admission, LockFreeExplored, StealQueues};
use crate::pool::{PoolScope, WorkerPool};
use crate::report::{FoundViolation, SearchOutcome, StopReason};
use crate::search::{
    approx_state_bytes, enumerate_gated, reconstruct, ArenaRec, SearchConfig, Searcher,
};
use crate::stats::SearchStats;

/// Tuning for the parallel engine.
#[derive(Clone, Debug)]
pub struct ParallelConfig {
    /// Worker threads for the check and expand phases. 1 runs the same
    /// algorithm inline (useful as a determinism control in tests); above
    /// 1, a search on a shared pool streams its per-job tasks to however
    /// many workers the pool provides.
    pub workers: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(8),
        }
    }
}

/// One successor edge emitted by the expand phase.
struct EdgeOut<P: Protocol> {
    /// The successor state — carried only by the edge whose worker won the
    /// explored-table insertion race for `hash`.
    ///
    /// Winning the race is *not* the same as being the canonical
    /// (first-in-BFS-order) edge: two states with equal hashes hold the
    /// same in-flight **multiset** but possibly in different `Vec`
    /// orders, and that order is visible to event enumeration. The merge
    /// therefore keeps the winner's clone only when the winner *is* the
    /// canonical edge, and re-derives the canonical clone otherwise.
    state: Option<GlobalState<P>>,
    hash: u64,
    /// When the insert race was lost: the level stamp the winner carried.
    /// Equal to the current successor stamp iff the hash was admitted
    /// *this* level (by a later-canonical edge); smaller means a true
    /// duplicate of an earlier level.
    prior_level: u64,
    event: Event<P>,
    step: TraceStep,
}

/// Everything a worker produced for one expansion job.
struct JobOut<P: Protocol> {
    edges: Vec<EdgeOut<P>>,
    filtered: usize,
}

impl<P: Protocol> JobOut<P> {
    fn empty() -> Self {
        JobOut {
            edges: Vec::new(),
            filtered: 0,
        }
    }
}

/// An expansion job: level-item index plus, under consequence prediction,
/// the nodes whose local-action block this item claimed (Fig. 8's
/// `localExplored` gate, resolved during the sequential visit phase).
struct ExpandJob {
    item: usize,
    allowed: Option<Vec<NodeId>>,
}

/// What the canonical visit decided about one level item.
enum VisitVerdict {
    /// Expand it (with the `localExplored` claims made for it, when the
    /// caller asked for them to be collected).
    Expand(Option<Vec<NodeId>>),
    /// Checked and recorded, but not expanded (violating or at the depth
    /// bound).
    Skip,
    /// A stop criterion fired at this item.
    Stop(StopReason),
}

/// How the visit handles Fig. 8's `localExplored` claims for an expanded
/// item.
enum VisitClaims {
    /// Resolve the claims now and return the allowed nodes — required
    /// when expansion happens later on another thread (phased mode), so
    /// the claims land in canonical item order regardless of scheduling.
    Collect,
    /// Leave the claims to the expansion itself, which follows
    /// immediately on this thread (fused mode) and gates enumeration
    /// through `localExplored` directly — same claims, same order, no
    /// per-item allocation.
    Inline,
}

/// The order-preserving channel between expand tasks and the coordinator:
/// a reorder buffer indexed by job, consumed as a contiguous prefix. Peak
/// residency is the out-of-order window (how far completed jobs run ahead
/// of the canonical cursor), not the whole level.
struct MergeChannel<P: Protocol> {
    inner: Mutex<MergeBuf<P>>,
    ready: Condvar,
}

struct MergeBuf<P: Protocol> {
    slots: Vec<Option<JobOut<P>>>,
    /// Next canonical job index the coordinator needs.
    next: usize,
}

impl<P: Protocol> MergeChannel<P> {
    fn new(jobs: usize) -> Self {
        MergeChannel {
            inner: Mutex::new(MergeBuf {
                slots: (0..jobs).map(|_| None).collect(),
                next: 0,
            }),
            ready: Condvar::new(),
        }
    }

    /// Deposits job `j`'s batch; wakes the coordinator iff `j` is the
    /// batch it is waiting on.
    fn deposit(&self, j: usize, out: JobOut<P>) {
        let mut b = self.inner.lock().expect("merge buffer poisoned");
        let wake = j == b.next;
        b.slots[j] = Some(out);
        drop(b);
        if wake {
            self.ready.notify_all();
        }
    }

    /// Takes the next in-canonical-order batch if it is already there.
    fn try_next(&self) -> Option<(usize, JobOut<P>)> {
        let mut b = self.inner.lock().expect("merge buffer poisoned");
        b.take_next()
    }

    /// Blocks until the next in-order batch arrives (deposits of that
    /// index notify) or `stop` is raised by a deadline-hitting task.
    fn wait_next(&self, stop: &AtomicBool) -> Option<(usize, JobOut<P>)> {
        let mut b = self.inner.lock().expect("merge buffer poisoned");
        loop {
            if let Some(out) = b.take_next() {
                return Some(out);
            }
            if b.next >= b.slots.len() || stop.load(Ordering::Relaxed) {
                return None;
            }
            b = self.ready.wait(b).expect("merge buffer poisoned");
        }
    }
}

impl<P: Protocol> MergeBuf<P> {
    fn take_next(&mut self) -> Option<(usize, JobOut<P>)> {
        let j = self.next;
        if j < self.slots.len() {
            if let Some(out) = self.slots[j].take() {
                self.next += 1;
                return Some((j, out));
            }
        }
        None
    }
}

/// Ensures a batch lands for job `j` even if the expand task unwinds:
/// without a deposit the coordinator would wait forever on a job whose
/// panic the pool has already captured for re-raising at scope exit.
struct DepositGuard<'a, P: Protocol> {
    chan: &'a MergeChannel<P>,
    j: usize,
    armed: bool,
}

impl<P: Protocol> Drop for DepositGuard<'_, P> {
    fn drop(&mut self) {
        if self.armed {
            self.chan.deposit(self.j, JobOut::empty());
        }
    }
}

impl<P: Protocol> Searcher<'_, P> {
    /// Runs the level-synchronous parallel search. Same violation set and
    /// canonical counterexample paths as [`Searcher::run`] for any worker
    /// count; scheduling only affects wall-clock numbers.
    ///
    /// Spawns a private [`WorkerPool`] for the duration of the search
    /// (one spawn per search, not per level). Callers that run many
    /// searches — or want several concurrent searches to share workers —
    /// should hold a pool and use [`Searcher::run_parallel_pooled`].
    pub fn run_parallel(&self, start: &GlobalState<P>, par: &ParallelConfig) -> SearchOutcome<P> {
        // The scope owner participates, so `workers` logical workers need
        // `workers - 1` pool threads; at 1 worker the pool is threadless
        // and the engine's inline phase paths never touch it.
        let pool = WorkerPool::new(par.workers.saturating_sub(1));
        self.run_parallel_pooled(start, par, &pool)
    }

    /// [`Searcher::run_parallel`] on a caller-provided shared pool: the
    /// check/expand phases draw workers from `pool` (the calling thread
    /// participates too), so concurrent independent searches — prediction,
    /// known-path replays, safety re-checks, sibling checker shards —
    /// multiplex over one set of threads instead of spawning their own.
    pub fn run_parallel_pooled(
        &self,
        start: &GlobalState<P>,
        par: &ParallelConfig,
        pool: &WorkerPool,
    ) -> SearchOutcome<P> {
        let workers = par.workers.max(1);
        // Per-level phase timing on stderr, for perf investigation:
        // CB_PAR_TRACE=1 cargo bench -p cb-bench --bench parallel_scaling
        let trace = std::env::var_os("CB_PAR_TRACE").is_some();
        let t0 = Instant::now();
        let mut stats = SearchStats::default();
        let mut violations: Vec<FoundViolation<P>> = Vec::new();
        let mut arena: Vec<ArenaRec<P>> = Vec::new();
        // Pre-size the table from the state budget: successor inserts run
        // a few times the visit budget (duplicates included), and linear
        // probing wants headroom. The first segment is capped at 2^20
        // slots (16 MiB) because it is allocated and zeroed up front even
        // if a deadline stops the search early — beyond that, segment
        // chaining (which doubles from the initial size) grows the table
        // to whatever the search actually reaches.
        let explored = LockFreeExplored::with_capacity(
            self.config
                .max_states
                .map_or(1 << 16, |m| m.saturating_mul(4).clamp(1 << 12, 1 << 20)),
        );
        let mut local_explored = std::collections::HashSet::new();
        // Hashes already decided (admitted or duplicate) by the merge in
        // the current level; allocation reused across levels.
        let mut seen_level: HashSet<u64> = HashSet::new();
        let mut depth_truncated = false;
        let mut stopped: Option<StopReason> = None;

        explored.insert_leveled(start.state_hash(), 0);
        // (state, parent arena rec) — all items of one level share a depth.
        let mut level: Vec<(GlobalState<P>, Option<usize>)> = vec![(start.clone(), None)];
        // Byte footprint of `level`, accumulated when the level was built
        // (while each state was cache-hot) instead of re-scanned here.
        let mut level_bytes = approx_state_bytes(start);
        stats.states_enqueued = 1;
        let mut depth = 0usize;

        'levels: while !level.is_empty() {
            let over_deadline =
                |deadline: Option<std::time::Duration>| deadline.is_some_and(|d| t0.elapsed() >= d);
            if over_deadline(self.config.deadline) {
                stopped = Some(StopReason::Deadline);
                break 'levels;
            }
            stats.peak_frontier_bytes = stats.peak_frontier_bytes.max(level_bytes);

            // Only the prefix the visit loop can still afford to dequeue
            // is checked/expanded — the final BFS level is typically the
            // largest, and work beyond the budget would be discarded.
            let budget_left = self
                .config
                .max_states
                .map_or(level.len(), |max| max.saturating_sub(stats.states_visited))
                .min(level.len());
            let stamp = depth as u64 + 1;
            seen_level.clear();
            // Levels rarely shrink: the previous level's size is a cheap
            // floor that skips most of the growth reallocations.
            let mut next_level: Vec<(GlobalState<P>, Option<usize>)> =
                Vec::with_capacity(level.len());
            let mut next_bytes = 0usize;
            let pt = Instant::now();

            if workers == 1 {
                // Fused single-worker pass: check, visit, expand and
                // merge one item at a time, all in canonical order — the
                // sequential loop over a level vector, with no phase
                // passes re-walking the level and nothing buffered. The
                // level is consumed by value so each state drops right
                // after its expansion, matching the sequential engine's
                // memory rhythm instead of holding two full levels.
                let items = level.len();
                for (i, item) in std::mem::take(&mut level).into_iter().enumerate() {
                    if i >= budget_left {
                        // Exactly the states the budget admits are
                        // visited; the rest of the level is cut off, as
                        // in the sequential engine.
                        stopped = Some(StopReason::StateLimit);
                        break;
                    }
                    if over_deadline(self.config.deadline) {
                        stopped = Some(StopReason::Deadline);
                        break 'levels;
                    }
                    let check = self.props.check(&item.0);
                    match self.visit_item(
                        check,
                        &item,
                        depth,
                        VisitClaims::Inline,
                        &mut local_explored,
                        &arena,
                        &mut violations,
                        &mut stats,
                        &mut depth_truncated,
                    ) {
                        VisitVerdict::Stop(r) => {
                            stopped = Some(r);
                            break;
                        }
                        VisitVerdict::Skip => {}
                        VisitVerdict::Expand(_) => self.expand_merge_fused(
                            &item,
                            &explored,
                            stamp,
                            &mut local_explored,
                            &mut arena,
                            &mut next_level,
                            &mut next_bytes,
                            &mut stats,
                        ),
                    }
                }
                if trace {
                    eprintln!("level d={} items={} fused={:?}", depth, items, pt.elapsed(),);
                }
            } else {
                // Phase 1: parallel property check over the budget prefix.
                let (checks, deadline_hit) =
                    self.check_level(&level[..budget_left], workers, t0, pool);
                let t_check = pt.elapsed();
                if deadline_hit {
                    stopped = Some(StopReason::Deadline);
                    break 'levels;
                }

                // Phase 2: sequential visit — stop criteria, violations,
                // and localExplored claims, all in canonical
                // (sequential-dequeue) order.
                let mut jobs: Vec<ExpandJob> = Vec::with_capacity(budget_left);
                let mut checks = checks.into_iter();
                for (i, item) in level.iter().enumerate() {
                    if i >= budget_left {
                        stopped = Some(StopReason::StateLimit);
                        break;
                    }
                    let check = checks.next().expect("budget prefix was checked");
                    match self.visit_item(
                        check,
                        item,
                        depth,
                        VisitClaims::Collect,
                        &mut local_explored,
                        &arena,
                        &mut violations,
                        &mut stats,
                        &mut depth_truncated,
                    ) {
                        VisitVerdict::Stop(r) => {
                            stopped = Some(r);
                            break;
                        }
                        VisitVerdict::Skip => {}
                        VisitVerdict::Expand(allowed) => jobs.push(ExpandJob { item: i, allowed }),
                    }
                }

                // Phase 3: expansion with the merge streamed behind it.
                // The stamp marks every successor admitted during this
                // level, so the canonical merge can tell "admitted this
                // level by a non-canonical edge" from "duplicate of an
                // earlier level" batch by batch.
                let pt3 = Instant::now();
                let deadline_hit = self.expand_and_merge_level(
                    &level,
                    &jobs,
                    &explored,
                    stamp,
                    workers,
                    t0,
                    pool,
                    &mut seen_level,
                    &mut arena,
                    &mut next_level,
                    &mut next_bytes,
                    &mut stats,
                );
                if deadline_hit {
                    stopped = Some(StopReason::Deadline);
                    break 'levels;
                }

                if trace {
                    eprintln!(
                        "level d={} items={} jobs={} check={:?} stream={:?} (merge busy={:?} wait={:?} cum)",
                        depth,
                        level.len(),
                        jobs.len(),
                        t_check,
                        pt3.elapsed(),
                        stats.merge_busy,
                        stats.merge_wait,
                    );
                }
            }
            if stopped.is_some() {
                break 'levels;
            }
            level = next_level;
            level_bytes = next_bytes;
            depth += 1;
        }

        let stopped = match stopped {
            Some(r) => r,
            None if depth_truncated => StopReason::DepthLimit,
            None => StopReason::Exhausted,
        };
        stats.elapsed = t0.elapsed();
        stats.tree_bytes = arena.len() * size_of::<ArenaRec<P>>()
            + (explored.len() + local_explored.len()) * 2 * size_of::<u64>();
        SearchOutcome {
            violations,
            stats,
            stopped,
        }
    }

    /// The canonical visit of one level item: record the visit, report a
    /// violation, apply the depth bound, and make the `localExplored`
    /// claims of Fig. 8 — exactly what the sequential loop does between
    /// dequeue and expansion. Shared by the fused single-worker pass and
    /// the phased multi-worker visit so the two paths cannot drift.
    #[allow(clippy::too_many_arguments)]
    fn visit_item(
        &self,
        check: Option<Violation>,
        item: &(GlobalState<P>, Option<usize>),
        depth: usize,
        claims: VisitClaims,
        local_explored: &mut std::collections::HashSet<u64>,
        arena: &[ArenaRec<P>],
        violations: &mut Vec<FoundViolation<P>>,
        stats: &mut SearchStats,
        depth_truncated: &mut bool,
    ) -> VisitVerdict {
        let (state, rec) = item;
        stats.record_visit(depth);
        if let Some(violation) = check {
            stats.violations_found += 1;
            violations.push(FoundViolation {
                violation,
                path: reconstruct(arena, *rec),
                depth,
            });
            if violations.len() >= self.config.max_violations {
                return VisitVerdict::Stop(StopReason::ViolationLimit);
            }
            return VisitVerdict::Skip; // violating states are not expanded
        }
        if self.config.max_depth.is_some_and(|d| depth >= d) {
            *depth_truncated = true;
            return VisitVerdict::Skip;
        }
        let allowed = match claims {
            VisitClaims::Inline => None,
            VisitClaims::Collect if !self.config.prune_local => None,
            VisitClaims::Collect => {
                let mut fresh = Vec::new();
                for &node in state.nodes.keys() {
                    let lh = state.local_hash(node).expect("node exists");
                    if local_explored.insert(lh) {
                        fresh.push(node);
                    } else {
                        stats.local_prunes += 1;
                    }
                }
                Some(fresh)
            }
        };
        VisitVerdict::Expand(allowed)
    }

    /// Fused single-worker expansion: enumerate (making the
    /// `localExplored` claims through the gate closure, exactly like the
    /// sequential loop), clone, apply, hash, insert — and merge each
    /// successor on the spot. Canonical order is the execution order, so
    /// the race winner is always the canonical edge and nothing is
    /// buffered.
    #[allow(clippy::too_many_arguments)]
    fn expand_merge_fused(
        &self,
        item: &(GlobalState<P>, Option<usize>),
        explored: &LockFreeExplored,
        stamp: u64,
        local_explored: &mut std::collections::HashSet<u64>,
        arena: &mut Vec<ArenaRec<P>>,
        next_level: &mut Vec<(GlobalState<P>, Option<usize>)>,
        next_bytes: &mut usize,
        stats: &mut SearchStats,
    ) {
        let state = &item.0;
        let mut filtered = 0usize;
        let mut prunes = 0usize;
        let events = if self.config.prune_local {
            enumerate_gated(
                self.protocol,
                &self.config,
                state,
                |node| {
                    let lh = state.local_hash(node).expect("node exists");
                    if local_explored.insert(lh) {
                        true
                    } else {
                        prunes += 1;
                        false
                    }
                },
                &mut filtered,
            )
        } else {
            enumerate_gated(self.protocol, &self.config, state, |_| true, &mut filtered)
        };
        stats.filtered_events += filtered;
        stats.local_prunes += prunes;
        for event in events {
            let mut next = state.clone();
            let step = apply_event(self.protocol, &mut next, &event);
            let hash = next.state_hash();
            match explored.insert_leveled(hash, stamp) {
                Admission::Fresh => {
                    arena.push(ArenaRec {
                        parent: item.1,
                        event,
                        step,
                    });
                    *next_bytes += approx_state_bytes(&next);
                    next_level.push((next, Some(arena.len() - 1)));
                    stats.states_enqueued += 1;
                }
                Admission::Seen { .. } => stats.duplicates_hit += 1,
            }
        }
    }

    /// Phase 1: property-checks every level item, fanning out over
    /// `workers` threads (inline when 1). `search_t0` is the clock the
    /// whole search runs on; returns the checks plus whether the
    /// deadline fired mid-phase.
    fn check_level(
        &self,
        level: &[(GlobalState<P>, Option<usize>)],
        workers: usize,
        search_t0: Instant,
        pool: &WorkerPool,
    ) -> (Vec<Option<Violation>>, bool) {
        let over =
            |limit: Option<std::time::Duration>| limit.is_some_and(|d| search_t0.elapsed() >= d);
        if workers == 1 || level.len() <= 1 {
            let mut checks = Vec::with_capacity(level.len());
            for (s, _) in level {
                if over(self.config.deadline) {
                    return (checks, true);
                }
                checks.push(self.props.check(s));
            }
            return (checks, false);
        }
        let slots: Vec<Mutex<Option<Option<Violation>>>> =
            level.iter().map(|_| Mutex::new(None)).collect();
        let queues = StealQueues::split(workers, level.len());
        let deadline_hit = AtomicBool::new(false);
        let worker_loop = |w: usize| {
            while let Some(i) = queues.next(w) {
                if over(self.config.deadline) {
                    deadline_hit.store(true, Ordering::Relaxed);
                    return;
                }
                let v = self.props.check(&level[i].0);
                *slots[i].lock().expect("check slot poisoned") = Some(v);
            }
        };
        pool.scope(|scope| {
            for w in 1..workers {
                let worker_loop = &worker_loop;
                scope.spawn(move || worker_loop(w));
            }
            worker_loop(0);
        });
        if deadline_hit.load(Ordering::Relaxed) {
            return (Vec::new(), true);
        }
        (
            slots
                .into_iter()
                .map(|s| {
                    s.into_inner()
                        .expect("check slot poisoned")
                        .expect("checked")
                })
                .collect(),
            false,
        )
    }

    /// Executes one expansion job: enumerate, clone, apply, hash, and
    /// race each successor into the explored table with one CAS.
    fn expand_one(
        &self,
        level: &[(GlobalState<P>, Option<usize>)],
        job: &ExpandJob,
        explored: &LockFreeExplored,
        stamp: u64,
    ) -> JobOut<P> {
        let state = &level[job.item].0;
        let mut filtered = 0usize;
        let events = match &job.allowed {
            Some(nodes) => enumerate_gated(
                self.protocol,
                &self.config,
                state,
                |n| nodes.contains(&n),
                &mut filtered,
            ),
            None => enumerate_gated(self.protocol, &self.config, state, |_| true, &mut filtered),
        };
        let mut edges = Vec::with_capacity(events.len());
        for event in events {
            let mut next = state.clone();
            let step = apply_event(self.protocol, &mut next, &event);
            let hash = next.state_hash();
            let (state, prior_level) = match explored.insert_leveled(hash, stamp) {
                Admission::Fresh => (Some(next), 0),
                Admission::Seen { level } => (None, level),
            };
            edges.push(EdgeOut {
                state,
                hash,
                prior_level,
                event,
                step,
            });
        }
        JobOut { edges, filtered }
    }

    /// Applies the canonical enqueue-time dedup to one job's edge batch,
    /// in canonical order. Exactly the bookkeeping the sequential loop
    /// performs at its `explored.insert`: the canonically-first edge to a
    /// hash admitted this level becomes its parent (with the canonical
    /// clone — re-derived when the insert race went to a non-canonical
    /// edge); everything else is a duplicate.
    #[allow(clippy::too_many_arguments)]
    fn merge_job(
        &self,
        level: &[(GlobalState<P>, Option<usize>)],
        item: usize,
        out: JobOut<P>,
        stamp: u64,
        seen_level: &mut HashSet<u64>,
        arena: &mut Vec<ArenaRec<P>>,
        next_level: &mut Vec<(GlobalState<P>, Option<usize>)>,
        next_bytes: &mut usize,
        stats: &mut SearchStats,
    ) {
        stats.filtered_events += out.filtered;
        for edge in out.edges {
            if !seen_level.insert(edge.hash) {
                // A canonically-earlier edge this level already decided
                // this hash (admitted it or proved it a duplicate).
                stats.duplicates_hit += 1;
                continue;
            }
            let admitted_this_level = edge.state.is_some() || edge.prior_level == stamp;
            if !admitted_this_level {
                stats.duplicates_hit += 1;
                continue;
            }
            // This edge is canonically first to a hash first reached this
            // level: it is the parent the sequential engine would record.
            // Keep its own clone only if it also won the insert race —
            // equal hashes guarantee equal node states and equal in-flight
            // *multisets*, but not equal in-flight `Vec` order, and that
            // order steers downstream event enumeration.
            let state = match edge.state {
                Some(state) => state,
                None => {
                    let mut s = level[item].0.clone();
                    apply_event(self.protocol, &mut s, &edge.event);
                    s
                }
            };
            arena.push(ArenaRec {
                parent: level[item].1,
                event: edge.event,
                step: edge.step,
            });
            *next_bytes += approx_state_bytes(&state);
            next_level.push((state, Some(arena.len() - 1)));
            stats.states_enqueued += 1;
        }
    }

    /// Phase 3: expands every job and merges the resulting edge batches
    /// in canonical job order, overlapped. Returns whether the deadline
    /// fired mid-phase (in which case the partial merge results are
    /// discarded by the caller).
    #[allow(clippy::too_many_arguments)]
    fn expand_and_merge_level(
        &self,
        level: &[(GlobalState<P>, Option<usize>)],
        jobs: &[ExpandJob],
        explored: &LockFreeExplored,
        stamp: u64,
        workers: usize,
        search_t0: Instant,
        pool: &WorkerPool,
        seen_level: &mut HashSet<u64>,
        arena: &mut Vec<ArenaRec<P>>,
        next_level: &mut Vec<(GlobalState<P>, Option<usize>)>,
        next_bytes: &mut usize,
        stats: &mut SearchStats,
    ) -> bool {
        let over =
            |limit: Option<std::time::Duration>| limit.is_some_and(|d| search_t0.elapsed() >= d);

        if workers == 1 || jobs.len() <= 1 {
            // Inline fast path: expand and merge interleave per job. The
            // canonical order *is* the execution order, so the race
            // winner is always the canonical edge and nothing needs
            // buffering — this is the sequential loop minus the frontier.
            for job in jobs {
                if over(self.config.deadline) {
                    return true;
                }
                let out = self.expand_one(level, job, explored, stamp);
                self.merge_job(
                    level, job.item, out, stamp, seen_level, arena, next_level, next_bytes, stats,
                );
            }
            return false;
        }

        let chan: MergeChannel<P> = MergeChannel::new(jobs.len());
        let stop = AtomicBool::new(false);
        let deadline_hit = AtomicBool::new(false);
        pool.scope(|scope: &PoolScope<'_, '_>| {
            for (j, job) in jobs.iter().enumerate() {
                let chan = &chan;
                let stop = &stop;
                let deadline_hit = &deadline_hit;
                scope.spawn(move || {
                    let mut guard = DepositGuard {
                        chan,
                        j,
                        armed: true,
                    };
                    if stop.load(Ordering::Relaxed) {
                        return; // guard deposits an empty batch
                    }
                    if over(self.config.deadline) {
                        deadline_hit.store(true, Ordering::Relaxed);
                        stop.store(true, Ordering::Relaxed);
                        return;
                    }
                    let out = self.expand_one(level, job, explored, stamp);
                    guard.armed = false;
                    chan.deposit(j, out);
                });
            }

            // The coordinator: merge batches in canonical order while the
            // remaining jobs expand. Starvation never blocks progress —
            // if the next canonical batch is missing and one of our jobs
            // is still queued, the coordinator runs it itself
            // (`help_one`), which also preserves canonical-completion
            // order on a zero-thread pool.
            let mut merged = 0usize;
            while merged < jobs.len() {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let got = match chan.try_next() {
                    Some(got) => Some(got),
                    None => {
                        if scope.help_one() {
                            // Ran one of our own queued jobs instead of
                            // sleeping — expansion work, attributed to
                            // neither merge timer.
                            continue;
                        }
                        // The needed job is running on another thread:
                        // wait for its deposit (deposits of the awaited
                        // index notify).
                        let tw = Instant::now();
                        let got = chan.wait_next(&stop);
                        stats.merge_wait += tw.elapsed();
                        got
                    }
                };
                let Some((j, out)) = got else {
                    break; // stop raised (deadline in a task)
                };
                let tb = Instant::now();
                self.merge_job(
                    level,
                    jobs[j].item,
                    out,
                    stamp,
                    seen_level,
                    arena,
                    next_level,
                    next_bytes,
                    stats,
                );
                stats.merge_busy += tb.elapsed();
                merged += 1;
                if over(self.config.deadline) {
                    deadline_hit.store(true, Ordering::Relaxed);
                    stop.store(true, Ordering::Relaxed);
                    break;
                }
            }
            // Scope exit runs any still-queued tasks (they observe `stop`
            // and deposit empty batches) and waits for in-flight ones.
        });
        deadline_hit.load(Ordering::Relaxed)
    }
}

/// Runs the exhaustive search of Fig. 5 on the parallel engine.
pub fn find_errors_parallel<P: Protocol>(
    protocol: &P,
    props: &cb_model::PropertySet<P>,
    start: &GlobalState<P>,
    config: SearchConfig,
    par: &ParallelConfig,
) -> SearchOutcome<P> {
    Searcher::new(
        protocol,
        props,
        SearchConfig {
            prune_local: false,
            ..config
        },
    )
    .run_parallel(start, par)
}

/// Runs consequence prediction (Fig. 8) on the parallel engine.
pub fn find_consequences_parallel<P: Protocol>(
    protocol: &P,
    props: &cb_model::PropertySet<P>,
    start: &GlobalState<P>,
    config: SearchConfig,
    par: &ParallelConfig,
) -> SearchOutcome<P> {
    Searcher::new(
        protocol,
        props,
        SearchConfig {
            prune_local: true,
            ..config
        },
    )
    .run_parallel(start, par)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{find_consequences, find_errors};
    use crate::SearchConfig;
    use cb_model::testproto::{max_pings_property, Ping};
    use cb_model::{ExploreOptions, NodeId, PropertySet};

    fn sys(n: u32) -> (Ping, GlobalState<Ping>) {
        let cfg = Ping {
            kick_target: NodeId(0),
            kick_enabled: true,
        };
        let gs = GlobalState::init(&cfg, (0..n).map(NodeId));
        (cfg, gs)
    }

    fn props(limit: u32) -> PropertySet<Ping> {
        PropertySet::new().with(max_pings_property(limit))
    }

    fn cfg() -> SearchConfig {
        SearchConfig {
            explore: ExploreOptions::minimal(),
            ..SearchConfig::default()
        }
    }

    fn outcome_fingerprint<P: Protocol>(
        out: &SearchOutcome<P>,
    ) -> (Vec<String>, usize, usize, usize) {
        (
            out.violations.iter().map(|v| v.scenario()).collect(),
            out.stats.states_visited,
            out.stats.states_enqueued,
            out.stats.duplicates_hit,
        )
    }

    #[test]
    fn parallel_bfs_matches_sequential_exactly() {
        let (p, gs) = sys(3);
        let pr = props(2);
        let seq = find_errors(&p, &pr, &gs, cfg());
        for workers in [1, 2, 4, 7] {
            let par = find_errors_parallel(&p, &pr, &gs, cfg(), &ParallelConfig { workers });
            assert_eq!(
                outcome_fingerprint(&seq),
                outcome_fingerprint(&par),
                "workers={workers}"
            );
            assert_eq!(seq.stopped, par.stopped);
        }
    }

    #[test]
    fn parallel_cp_matches_sequential_exactly() {
        let (p, gs) = sys(4);
        let pr = props(3);
        let base = SearchConfig {
            max_depth: Some(6),
            ..cfg()
        };
        let seq = find_consequences(&p, &pr, &gs, base.clone());
        for workers in [1, 4] {
            let par =
                find_consequences_parallel(&p, &pr, &gs, base.clone(), &ParallelConfig { workers });
            assert_eq!(
                outcome_fingerprint(&seq),
                outcome_fingerprint(&par),
                "workers={workers}"
            );
            assert_eq!(seq.stats.local_prunes, par.stats.local_prunes);
        }
    }

    #[test]
    fn parallel_exhaustion_matches_without_violations() {
        let (p, gs) = sys(4);
        let pr = props(u32::MAX);
        let base = SearchConfig {
            max_depth: Some(5),
            max_states: Some(1_000_000),
            ..cfg()
        };
        let seq = find_errors(&p, &pr, &gs, base.clone());
        let par = find_errors_parallel(&p, &pr, &gs, base, &ParallelConfig { workers: 4 });
        assert_eq!(outcome_fingerprint(&seq), outcome_fingerprint(&par));
        assert_eq!(seq.stopped, par.stopped);
        assert_eq!(seq.stats.per_depth, par.stats.per_depth);
    }

    #[test]
    fn parallel_state_budget_matches_sequential() {
        let (p, gs) = sys(4);
        let pr = props(u32::MAX);
        let base = SearchConfig {
            max_states: Some(100),
            ..cfg()
        };
        let seq = find_errors(&p, &pr, &gs, base.clone());
        let par = find_errors_parallel(&p, &pr, &gs, base, &ParallelConfig { workers: 4 });
        assert_eq!(seq.stopped, StopReason::StateLimit);
        assert_eq!(outcome_fingerprint(&seq), outcome_fingerprint(&par));
    }

    #[test]
    fn parallel_multi_violation_budget_matches() {
        let (p, gs) = sys(3);
        let pr = props(2);
        let base = SearchConfig {
            max_violations: 5,
            max_depth: Some(6),
            ..cfg()
        };
        let seq = find_errors(&p, &pr, &gs, base.clone());
        let par = find_errors_parallel(&p, &pr, &gs, base, &ParallelConfig { workers: 4 });
        assert!(seq.violations.len() > 1, "multiple violations in budget");
        assert_eq!(outcome_fingerprint(&seq), outcome_fingerprint(&par));
    }

    #[test]
    fn parallel_deadline_stops() {
        let (p, gs) = sys(6);
        let pr = props(u32::MAX);
        let out = find_errors_parallel(
            &p,
            &pr,
            &gs,
            SearchConfig {
                deadline: Some(std::time::Duration::from_millis(0)),
                max_states: None,
                ..cfg()
            },
            &ParallelConfig { workers: 4 },
        );
        assert_eq!(out.stopped, StopReason::Deadline);
    }

    #[test]
    fn merge_timers_populated_only_in_streamed_mode() {
        let (p, gs) = sys(4);
        let pr = props(u32::MAX);
        let base = SearchConfig {
            max_depth: Some(5),
            ..cfg()
        };
        let seq = find_errors(&p, &pr, &gs, base.clone());
        assert_eq!(seq.stats.merge_busy, std::time::Duration::ZERO);
        assert_eq!(seq.stats.merge_wait, std::time::Duration::ZERO);
        let inline =
            find_errors_parallel(&p, &pr, &gs, base.clone(), &ParallelConfig { workers: 1 });
        assert_eq!(inline.stats.merge_busy, std::time::Duration::ZERO);
        let streamed = find_errors_parallel(&p, &pr, &gs, base, &ParallelConfig { workers: 4 });
        assert!(
            streamed.stats.merge_busy > std::time::Duration::ZERO,
            "streamed coordinator recorded merge work"
        );
    }

    #[test]
    fn default_config_has_workers() {
        assert!(ParallelConfig::default().workers >= 1);
    }
}
