//! The parallel work-stealing search engine.
//!
//! CrystalBall's checker runs *concurrently with the deployed system*; its
//! usefulness is bounded by how many states per second it can explore
//! before the erroneous event arrives (§4, Fig. 12). This engine fans the
//! hot path of the search — state cloning, handler execution, hashing and
//! property checks — out over a worker pool while keeping the *content* of
//! the result (violation set, counterexample paths, visit counts)
//! bit-identical to the sequential engine, even though thread scheduling
//! is nondeterministic.
//!
//! # Design: level-synchronous BFS with a deterministic merge
//!
//! The engine processes the state graph one BFS level at a time. Each
//! level runs four phases:
//!
//! 1. **Check** (parallel): property-check every state of the level.
//!    Workers pull item indices from [`StealQueues`].
//! 2. **Visit** (sequential, cheap): walk the level in canonical order
//!    (the order the sequential engine would dequeue), applying stop
//!    criteria, recording violations, and — under consequence prediction —
//!    performing the `localExplored` claims of Fig. 8 in exactly the order
//!    the sequential loop would, which pins down *which* state gets to
//!    expand each fresh local state. Produces the list of expansion jobs.
//! 3. **Expand** (parallel): workers execute each job — enumerate events,
//!    clone the state, run the handler, hash the successor — and race to
//!    insert successor hashes into the [`ShardedExplored`] set. Exactly
//!    one worker wins any hash; the winner keeps the successor state, the
//!    losers emit a hash-only edge.
//! 4. **Merge** (sequential, cheap): iterate all emitted edges in
//!    canonical order (job order × event order) and assign each
//!    newly admitted hash its *first* edge in that order as the parent.
//!    This is the same parent the sequential engine's enqueue-time dedup
//!    would record. The surviving clone must be the canonical edge's,
//!    too: equal hashes mean equal node states and equal in-flight
//!    *multisets*, but not equal in-flight `Vec` order, and that order
//!    steers later event enumeration — so when the insert race was won
//!    by a non-canonical edge, the merge re-derives the canonical clone
//!    from its parent. Reconstructed paths — including the canonical
//!    shallowest counterexample, tie-broken by (depth,
//!    path-lexicographic order) — and every downstream level then match
//!    the sequential engine exactly.
//!
//! The expensive work (phases 1 and 3) scales with workers; the
//! sequential phases are hash-set bookkeeping. Wall-clock-dependent
//! outcomes (deadline stops) are the only nondeterminism that survives.
//!
//! Differences from the sequential engine, all stats-level: `elapsed` and
//! `peak_frontier_bytes` reflect this engine's level-at-a-time residency
//! (the per-level sum of state footprints) rather than a sliding window.

use std::collections::HashSet;
use std::mem::size_of;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use cb_model::{apply_event, Event, GlobalState, NodeId, Protocol, TraceStep, Violation};

use crate::frontier::{ShardedExplored, StealQueues};
use crate::pool::WorkerPool;
use crate::report::{FoundViolation, SearchOutcome, StopReason};
use crate::search::{
    approx_state_bytes, enumerate_gated, reconstruct, ArenaRec, SearchConfig, Searcher,
};
use crate::stats::SearchStats;

/// Tuning for the parallel engine.
#[derive(Clone, Debug)]
pub struct ParallelConfig {
    /// Worker threads for the check and expand phases. 1 runs the same
    /// algorithm inline (useful as a determinism control in tests).
    pub workers: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(8),
        }
    }
}

/// One successor edge emitted by the expand phase.
struct EdgeOut<P: Protocol> {
    /// The successor state — carried only by the edge whose worker won the
    /// explored-set insertion race for `hash`.
    ///
    /// Winning the race is *not* the same as being the canonical
    /// (first-in-BFS-order) edge: two states with equal hashes hold the
    /// same in-flight **multiset** but possibly in different `Vec`
    /// orders, and that order is visible to event enumeration. The merge
    /// therefore keeps the winner's clone only when the winner *is* the
    /// canonical edge, and re-derives the canonical clone otherwise.
    state: Option<GlobalState<P>>,
    hash: u64,
    event: Event<P>,
    step: TraceStep,
}

/// Everything a worker produced for one expansion job.
struct JobOut<P: Protocol> {
    edges: Vec<EdgeOut<P>>,
    filtered: usize,
}

/// An expansion job: level-item index plus, under consequence prediction,
/// the nodes whose local-action block this item claimed (Fig. 8's
/// `localExplored` gate, resolved during the sequential visit phase).
struct ExpandJob {
    item: usize,
    allowed: Option<Vec<NodeId>>,
}

impl<P: Protocol> Searcher<'_, P> {
    /// Runs the level-synchronous parallel search. Same violation set and
    /// canonical counterexample paths as [`Searcher::run`] for any worker
    /// count; scheduling only affects wall-clock numbers.
    ///
    /// Spawns a private [`WorkerPool`] for the duration of the search
    /// (one spawn per search, not per level). Callers that run many
    /// searches — or want several concurrent searches to share workers —
    /// should hold a pool and use [`Searcher::run_parallel_pooled`].
    pub fn run_parallel(&self, start: &GlobalState<P>, par: &ParallelConfig) -> SearchOutcome<P> {
        // The scope owner participates, so `workers` logical workers need
        // `workers - 1` pool threads; at 1 worker the pool is threadless
        // and the engine's inline phase paths never touch it.
        let pool = WorkerPool::new(par.workers.saturating_sub(1));
        self.run_parallel_pooled(start, par, &pool)
    }

    /// [`Searcher::run_parallel`] on a caller-provided shared pool: the
    /// check/expand phases draw workers from `pool` (the calling thread
    /// participates too), so concurrent independent searches — prediction,
    /// known-path replays, safety re-checks, sibling checker shards —
    /// multiplex over one set of threads instead of spawning their own.
    pub fn run_parallel_pooled(
        &self,
        start: &GlobalState<P>,
        par: &ParallelConfig,
        pool: &WorkerPool,
    ) -> SearchOutcome<P> {
        let workers = par.workers.max(1);
        // Per-level phase timing on stderr, for perf investigation:
        // CB_PAR_TRACE=1 cargo bench -p cb-bench --bench parallel_scaling
        let trace = std::env::var_os("CB_PAR_TRACE").is_some();
        let t0 = Instant::now();
        let mut stats = SearchStats::default();
        let mut violations: Vec<FoundViolation<P>> = Vec::new();
        let mut arena: Vec<ArenaRec<P>> = Vec::new();
        let explored = ShardedExplored::new(workers * 8);
        let mut local_explored = std::collections::HashSet::new();
        let mut depth_truncated = false;
        let mut stopped: Option<StopReason> = None;

        explored.insert(start.state_hash());
        // (state, parent arena rec) — all items of one level share a depth.
        let mut level: Vec<(GlobalState<P>, Option<usize>)> = vec![(start.clone(), None)];
        stats.states_enqueued = 1;
        let mut depth = 0usize;

        'levels: while !level.is_empty() {
            let over_deadline =
                |deadline: Option<std::time::Duration>| deadline.is_some_and(|d| t0.elapsed() >= d);
            if over_deadline(self.config.deadline) {
                stopped = Some(StopReason::Deadline);
                break 'levels;
            }
            stats.peak_frontier_bytes = stats
                .peak_frontier_bytes
                .max(level.iter().map(|(s, _)| approx_state_bytes(s)).sum());

            // Phase 1: parallel property check. Only the prefix the
            // visit loop can still afford to dequeue is checked — the
            // final BFS level is typically the largest, and checking
            // states beyond the budget would be discarded work.
            let budget_left = self
                .config
                .max_states
                .map_or(level.len(), |max| max.saturating_sub(stats.states_visited))
                .min(level.len());
            let pt = Instant::now();
            let (checks, deadline_hit) = self.check_level(&level[..budget_left], workers, t0, pool);
            let t_check = pt.elapsed();
            if deadline_hit {
                stopped = Some(StopReason::Deadline);
                break 'levels;
            }

            // Phase 2: sequential visit — stop criteria, violations, and
            // localExplored claims, all in canonical (sequential-dequeue)
            // order.
            let mut jobs: Vec<ExpandJob> = Vec::with_capacity(budget_left);
            for (i, (state, rec)) in level.iter().enumerate() {
                if i >= budget_left {
                    // Exactly the states the budget admitted were checked
                    // and visited; the rest of the level is cut off, as in
                    // the sequential engine.
                    stopped = Some(StopReason::StateLimit);
                    break;
                }
                stats.record_visit(depth);
                if let Some(v) = &checks[i] {
                    stats.violations_found += 1;
                    violations.push(FoundViolation {
                        violation: v.clone(),
                        path: reconstruct(&arena, *rec),
                        depth,
                    });
                    if violations.len() >= self.config.max_violations {
                        stopped = Some(StopReason::ViolationLimit);
                        break;
                    }
                    continue; // violating states are not expanded
                }
                if self.config.max_depth.is_some_and(|d| depth >= d) {
                    depth_truncated = true;
                    continue;
                }
                let allowed = if self.config.prune_local {
                    let mut fresh = Vec::new();
                    for &node in state.nodes.keys() {
                        let lh = state.local_hash(node).expect("node exists");
                        if local_explored.insert(lh) {
                            fresh.push(node);
                        } else {
                            stats.local_prunes += 1;
                        }
                    }
                    Some(fresh)
                } else {
                    None
                };
                jobs.push(ExpandJob { item: i, allowed });
            }

            // Phase 3: parallel expansion with work stealing.
            let pt = Instant::now();
            let (results, deadline_hit) =
                self.expand_level(&level, &jobs, &explored, workers, t0, pool);
            let t_expand = pt.elapsed();
            let pt = Instant::now();
            if deadline_hit {
                stopped = Some(StopReason::Deadline);
                break 'levels;
            }

            // Phase 4: deterministic merge. Note which hashes were
            // admitted this level, then assign parents — and pick the
            // surviving clone — in canonical order.
            let mut admitted: HashSet<u64> = HashSet::new();
            let mut ordered: Vec<(usize, Vec<EdgeOut<P>>)> = Vec::with_capacity(jobs.len());
            for (job, out) in jobs.iter().zip(results) {
                let out = out.expect("every job produces output");
                stats.filtered_events += out.filtered;
                for edge in &out.edges {
                    if edge.state.is_some() {
                        admitted.insert(edge.hash);
                    }
                }
                ordered.push((job.item, out.edges));
            }
            let mut next_level: Vec<(GlobalState<P>, Option<usize>)> =
                Vec::with_capacity(admitted.len());
            for (item, edges) in ordered {
                for edge in edges {
                    // The canonically-first edge to a hash admitted this
                    // level becomes its parent; everything else (later
                    // edges, edges to hashes from earlier levels) is a
                    // duplicate — the same accounting the sequential
                    // engine's enqueue-time `insert` performs.
                    if admitted.remove(&edge.hash) {
                        // Keep the canonical edge's own successor clone.
                        // Equal hashes guarantee equal node states and
                        // equal in-flight *multisets*, but not equal
                        // in-flight `Vec` order — and that order steers
                        // downstream event enumeration. If the insert
                        // race was won by a non-canonical edge, re-derive
                        // the canonical clone so every later level (and
                        // the recorded paths) match the sequential
                        // engine bit for bit.
                        let state = match edge.state {
                            Some(state) => state,
                            None => {
                                let mut s = level[item].0.clone();
                                apply_event(self.protocol, &mut s, &edge.event);
                                s
                            }
                        };
                        arena.push(ArenaRec {
                            parent: level[item].1,
                            event: edge.event,
                            step: edge.step,
                        });
                        next_level.push((state, Some(arena.len() - 1)));
                        stats.states_enqueued += 1;
                    } else {
                        stats.duplicates_hit += 1;
                    }
                }
            }

            if trace {
                eprintln!(
                    "level d={} items={} jobs={} check={:?} expand={:?} merge={:?}",
                    depth,
                    level.len(),
                    jobs.len(),
                    t_check,
                    t_expand,
                    pt.elapsed()
                );
            }
            if stopped.is_some() {
                break 'levels;
            }
            level = next_level;
            depth += 1;
        }

        let stopped = match stopped {
            Some(r) => r,
            None if depth_truncated => StopReason::DepthLimit,
            None => StopReason::Exhausted,
        };
        stats.elapsed = t0.elapsed();
        stats.tree_bytes = arena.len() * size_of::<ArenaRec<P>>()
            + (explored.len() + local_explored.len()) * 2 * size_of::<u64>();
        SearchOutcome {
            violations,
            stats,
            stopped,
        }
    }

    /// Phase 1: property-checks every level item, fanning out over
    /// `workers` threads (inline when 1). `search_t0` is the clock the
    /// whole search runs on; returns the checks plus whether the
    /// deadline fired mid-phase.
    fn check_level(
        &self,
        level: &[(GlobalState<P>, Option<usize>)],
        workers: usize,
        search_t0: Instant,
        pool: &WorkerPool,
    ) -> (Vec<Option<Violation>>, bool) {
        let over =
            |limit: Option<std::time::Duration>| limit.is_some_and(|d| search_t0.elapsed() >= d);
        if workers == 1 || level.len() <= 1 {
            let mut checks = Vec::with_capacity(level.len());
            for (s, _) in level {
                if over(self.config.deadline) {
                    return (checks, true);
                }
                checks.push(self.props.check(s));
            }
            return (checks, false);
        }
        let slots: Vec<Mutex<Option<Option<Violation>>>> =
            level.iter().map(|_| Mutex::new(None)).collect();
        let queues = StealQueues::split(workers, level.len());
        let deadline_hit = AtomicBool::new(false);
        let worker_loop = |w: usize| {
            while let Some(i) = queues.next(w) {
                if over(self.config.deadline) {
                    deadline_hit.store(true, Ordering::Relaxed);
                    return;
                }
                let v = self.props.check(&level[i].0);
                *slots[i].lock().expect("check slot poisoned") = Some(v);
            }
        };
        pool.scope(|scope| {
            for w in 1..workers {
                let worker_loop = &worker_loop;
                scope.spawn(move || worker_loop(w));
            }
            worker_loop(0);
        });
        if deadline_hit.load(Ordering::Relaxed) {
            return (Vec::new(), true);
        }
        (
            slots
                .into_iter()
                .map(|s| {
                    s.into_inner()
                        .expect("check slot poisoned")
                        .expect("checked")
                })
                .collect(),
            false,
        )
    }

    /// Phase 3: expands every job, workers racing successor hashes into
    /// the sharded explored set. Returns per-job outputs (in job order)
    /// and whether the deadline fired mid-phase.
    fn expand_level(
        &self,
        level: &[(GlobalState<P>, Option<usize>)],
        jobs: &[ExpandJob],
        explored: &ShardedExplored,
        workers: usize,
        search_t0: Instant,
        pool: &WorkerPool,
    ) -> (Vec<Option<JobOut<P>>>, bool) {
        let expand_one = |job: &ExpandJob| -> JobOut<P> {
            let state = &level[job.item].0;
            let mut filtered = 0usize;
            let events = match &job.allowed {
                Some(nodes) => enumerate_gated(
                    self.protocol,
                    &self.config,
                    state,
                    |n| nodes.contains(&n),
                    &mut filtered,
                ),
                None => {
                    enumerate_gated(self.protocol, &self.config, state, |_| true, &mut filtered)
                }
            };
            let mut edges = Vec::with_capacity(events.len());
            for event in events {
                let mut next = state.clone();
                let step = apply_event(self.protocol, &mut next, &event);
                let hash = next.state_hash();
                let state = explored.insert(hash).then_some(next);
                edges.push(EdgeOut {
                    state,
                    hash,
                    event,
                    step,
                });
            }
            JobOut { edges, filtered }
        };

        if workers == 1 || jobs.len() == 1 {
            let mut outs = Vec::with_capacity(jobs.len());
            for job in jobs {
                if self
                    .config
                    .deadline
                    .is_some_and(|d| search_t0.elapsed() >= d)
                {
                    return (outs, true);
                }
                outs.push(Some(expand_one(job)));
            }
            return (outs, false);
        }

        let slots: Vec<Mutex<Option<JobOut<P>>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
        let queues = StealQueues::split(workers, jobs.len());
        let deadline_hit = AtomicBool::new(false);
        let worker_loop = |w: usize| {
            while let Some(j) = queues.next(w) {
                if self
                    .config
                    .deadline
                    .is_some_and(|d| search_t0.elapsed() >= d)
                {
                    deadline_hit.store(true, Ordering::Relaxed);
                    return;
                }
                *slots[j].lock().expect("expand slot poisoned") = Some(expand_one(&jobs[j]));
            }
        };
        pool.scope(|scope| {
            for w in 1..workers {
                let worker_loop = &worker_loop;
                scope.spawn(move || worker_loop(w));
            }
            worker_loop(0);
        });
        if deadline_hit.load(Ordering::Relaxed) {
            return (Vec::new(), true);
        }
        (
            slots
                .into_iter()
                .map(|s| s.into_inner().expect("expand slot poisoned"))
                .collect(),
            false,
        )
    }
}

/// Runs the exhaustive search of Fig. 5 on the parallel engine.
pub fn find_errors_parallel<P: Protocol>(
    protocol: &P,
    props: &cb_model::PropertySet<P>,
    start: &GlobalState<P>,
    config: SearchConfig,
    par: &ParallelConfig,
) -> SearchOutcome<P> {
    Searcher::new(
        protocol,
        props,
        SearchConfig {
            prune_local: false,
            ..config
        },
    )
    .run_parallel(start, par)
}

/// Runs consequence prediction (Fig. 8) on the parallel engine.
pub fn find_consequences_parallel<P: Protocol>(
    protocol: &P,
    props: &cb_model::PropertySet<P>,
    start: &GlobalState<P>,
    config: SearchConfig,
    par: &ParallelConfig,
) -> SearchOutcome<P> {
    Searcher::new(
        protocol,
        props,
        SearchConfig {
            prune_local: true,
            ..config
        },
    )
    .run_parallel(start, par)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{find_consequences, find_errors};
    use crate::SearchConfig;
    use cb_model::testproto::{max_pings_property, Ping};
    use cb_model::{ExploreOptions, NodeId, PropertySet};

    fn sys(n: u32) -> (Ping, GlobalState<Ping>) {
        let cfg = Ping {
            kick_target: NodeId(0),
            kick_enabled: true,
        };
        let gs = GlobalState::init(&cfg, (0..n).map(NodeId));
        (cfg, gs)
    }

    fn props(limit: u32) -> PropertySet<Ping> {
        PropertySet::new().with(max_pings_property(limit))
    }

    fn cfg() -> SearchConfig {
        SearchConfig {
            explore: ExploreOptions::minimal(),
            ..SearchConfig::default()
        }
    }

    fn outcome_fingerprint<P: Protocol>(
        out: &SearchOutcome<P>,
    ) -> (Vec<String>, usize, usize, usize) {
        (
            out.violations.iter().map(|v| v.scenario()).collect(),
            out.stats.states_visited,
            out.stats.states_enqueued,
            out.stats.duplicates_hit,
        )
    }

    #[test]
    fn parallel_bfs_matches_sequential_exactly() {
        let (p, gs) = sys(3);
        let pr = props(2);
        let seq = find_errors(&p, &pr, &gs, cfg());
        for workers in [1, 2, 4, 7] {
            let par = find_errors_parallel(&p, &pr, &gs, cfg(), &ParallelConfig { workers });
            assert_eq!(
                outcome_fingerprint(&seq),
                outcome_fingerprint(&par),
                "workers={workers}"
            );
            assert_eq!(seq.stopped, par.stopped);
        }
    }

    #[test]
    fn parallel_cp_matches_sequential_exactly() {
        let (p, gs) = sys(4);
        let pr = props(3);
        let base = SearchConfig {
            max_depth: Some(6),
            ..cfg()
        };
        let seq = find_consequences(&p, &pr, &gs, base.clone());
        for workers in [1, 4] {
            let par =
                find_consequences_parallel(&p, &pr, &gs, base.clone(), &ParallelConfig { workers });
            assert_eq!(
                outcome_fingerprint(&seq),
                outcome_fingerprint(&par),
                "workers={workers}"
            );
            assert_eq!(seq.stats.local_prunes, par.stats.local_prunes);
        }
    }

    #[test]
    fn parallel_exhaustion_matches_without_violations() {
        let (p, gs) = sys(4);
        let pr = props(u32::MAX);
        let base = SearchConfig {
            max_depth: Some(5),
            max_states: Some(1_000_000),
            ..cfg()
        };
        let seq = find_errors(&p, &pr, &gs, base.clone());
        let par = find_errors_parallel(&p, &pr, &gs, base, &ParallelConfig { workers: 4 });
        assert_eq!(outcome_fingerprint(&seq), outcome_fingerprint(&par));
        assert_eq!(seq.stopped, par.stopped);
        assert_eq!(seq.stats.per_depth, par.stats.per_depth);
    }

    #[test]
    fn parallel_state_budget_matches_sequential() {
        let (p, gs) = sys(4);
        let pr = props(u32::MAX);
        let base = SearchConfig {
            max_states: Some(100),
            ..cfg()
        };
        let seq = find_errors(&p, &pr, &gs, base.clone());
        let par = find_errors_parallel(&p, &pr, &gs, base, &ParallelConfig { workers: 4 });
        assert_eq!(seq.stopped, StopReason::StateLimit);
        assert_eq!(outcome_fingerprint(&seq), outcome_fingerprint(&par));
    }

    #[test]
    fn parallel_multi_violation_budget_matches() {
        let (p, gs) = sys(3);
        let pr = props(2);
        let base = SearchConfig {
            max_violations: 5,
            max_depth: Some(6),
            ..cfg()
        };
        let seq = find_errors(&p, &pr, &gs, base.clone());
        let par = find_errors_parallel(&p, &pr, &gs, base, &ParallelConfig { workers: 4 });
        assert!(seq.violations.len() > 1, "multiple violations in budget");
        assert_eq!(outcome_fingerprint(&seq), outcome_fingerprint(&par));
    }

    #[test]
    fn parallel_deadline_stops() {
        let (p, gs) = sys(6);
        let pr = props(u32::MAX);
        let out = find_errors_parallel(
            &p,
            &pr,
            &gs,
            SearchConfig {
                deadline: Some(std::time::Duration::from_millis(0)),
                max_states: None,
                ..cfg()
            },
            &ParallelConfig { workers: 4 },
        );
        assert_eq!(out.stopped, StopReason::Deadline);
    }

    #[test]
    fn default_config_has_workers() {
        assert!(ParallelConfig::default().workers >= 1);
    }
}
