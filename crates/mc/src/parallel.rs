//! The parallel work-stealing search engine.
//!
//! CrystalBall's checker runs *concurrently with the deployed system*; its
//! usefulness is bounded by how many states per second it can explore
//! before the erroneous event arrives (§4, Fig. 12). This engine fans the
//! hot path of the search — state cloning, handler execution, hashing and
//! property checks — out over a worker pool while keeping the *content* of
//! the result (violation set, counterexample paths, visit counts)
//! bit-identical to the sequential engine, even though thread scheduling
//! is nondeterministic.
//!
//! # Design: level-synchronous BFS with a streamed deterministic merge
//!
//! The engine processes the state graph one BFS level at a time. Each
//! level runs three phases:
//!
//! 1. **Check** (parallel): property-check every state of the level.
//!    Workers pull item indices from [`StealQueues`].
//! 2. **Visit** (sequential, cheap): walk the level in canonical order
//!    (the order the sequential engine would dequeue), applying stop
//!    criteria, recording violations, and — under consequence prediction —
//!    performing the `localExplored` claims of Fig. 8 in exactly the order
//!    the sequential loop would, which pins down *which* state gets to
//!    expand each fresh local state. Produces the list of expansion jobs.
//! 3. **Expand + merge** (overlapped): every job becomes one pool task —
//!    enumerate events, clone the state, run the handler, hash the
//!    successor, and race a single CAS per successor into the
//!    [`LockFreeExplored`] table (stamped with the successor level; the
//!    segment-chain walk and length updates are batched per task via
//!    [`ExploredBatch`], so a task's burst of inserts costs one acquire
//!    edge and one shared-counter update instead of one per state). The
//!    task streams its edge batch into an order-preserving reorder
//!    buffer; the coordinator consumes batches in canonical job order
//!    *while later jobs are still expanding*, so the canonical
//!    dedup/merge no longer waits for — or buffers — the whole level.
//!    When the next in-order batch is not ready, the coordinator helps by
//!    executing one of its own queued jobs instead of sleeping.
//!
//! # Sharded merge
//!
//! Above one merge shard ([`ParallelConfig::merge_shards`]), the phase-3
//! merge itself is parallelized: each successor edge is routed by a hash
//! of its explored-table key to one of `k` shards, each with its own
//! reorder buffer and its own dedup set. Equal hashes always land in the
//! same shard, so every per-hash decision — first-canonical-edge wins,
//! admitted-this-level vs earlier-duplicate, canonical-clone re-derivation
//! — is taken with exactly the inputs the single coordinator would use;
//! shards only interleave decisions about *different* hashes. Shard 0 is
//! streamed by the coordinator as before; shards 1..k run as pool tasks
//! spawned after every expand task (the pool queue is FIFO, so a blocked
//! shard only ever waits on expansions that are already running — no
//! deadlock at any pool size, including zero threads). Each shard emits
//! its admitted edges tagged with their canonical (job, event) position,
//! and a sequential k-way recombine merges the per-shard streams —
//! each already canonically ordered — back into the exact sequential
//! enqueue order, so arena layout, violations and shallowest paths stay
//! bit-identical to the sequential engine for every shard count.
//!
//! The explored set itself can be compacted to 8-byte entries and spilled
//! to a sorted on-disk run when a resident-byte budget is exceeded
//! ([`ParallelConfig::compact_explored`] /
//! [`ParallelConfig::explored_spill_bytes`]); spills happen only at level
//! boundaries, the engine's natural quiescent points.
//!
//! The merge applies the sequential engine's enqueue-time dedup in
//! canonical order (job order × event order): the canonically-first edge
//! to each hash admitted this level becomes its parent. Whether a hash
//! was admitted this level is read off the table's level stamp, so the
//! decision needs no level-wide `admitted` set. The surviving clone must
//! be the canonical edge's, too: equal hashes mean equal node states and
//! equal in-flight *multisets*, but not equal in-flight `Vec` order, and
//! that order steers later event enumeration — so when the insert race
//! was won by a non-canonical edge, the merge re-derives the canonical
//! clone from its parent. Reconstructed paths — including the canonical
//! shallowest counterexample, tie-broken by (depth, path-lexicographic
//! order) — and every downstream level then match the sequential engine
//! exactly. Wall-clock-dependent outcomes (deadline stops) are the only
//! nondeterminism that survives.
//!
//! At one worker the engine runs a fully inline fast path: expand and
//! merge interleave per job with no channel, no reorder buffer and no
//! edge buffering at all — the only overhead over the sequential loop is
//! the level vector itself.
//!
//! Differences from the sequential engine, all stats-level: `elapsed` and
//! `peak_frontier_bytes` reflect this engine's level-at-a-time residency
//! (the per-level sum of state footprints) rather than a sliding window,
//! and `merge_busy`/`merge_wait` are populated (split so the
//! coordinator's reorder-buffer stalls are not double-counted as merge
//! cost — see [`SearchStats`]).

use std::collections::HashSet;
use std::mem::size_of;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use cb_model::{apply_event, Event, GlobalState, NodeId, Protocol, TraceStep, Violation};

use crate::frontier::{Admission, ExploredBatch, LockFreeExplored, StealQueues};
use crate::pool::{PoolScope, WorkerPool};
use crate::report::{FoundViolation, SearchOutcome, StopReason};
use crate::search::{
    approx_state_bytes, enumerate_gated, reconstruct, ArenaRec, SearchConfig, Searcher,
};
use crate::stats::SearchStats;

// Scrapeable search-layer families: the explored set's memory shape
// (gauges reflect the most recently finished search — what "is the
// checker's memory budget holding" means mid-deployment) and cumulative
// visit/spill counters.
static M_EXPLORED_RESIDENT: cb_obs::metrics::Gauge = cb_obs::metrics::Gauge::new(
    "cb_mc_explored_resident_bytes",
    "explored-set bytes resident in memory after the last search",
);
static M_EXPLORED_SPILLED: cb_obs::metrics::Gauge = cb_obs::metrics::Gauge::new(
    "cb_mc_explored_spilled_bytes",
    "explored-set bytes spilled to disk by the last search",
);
static M_SPILLS: cb_obs::metrics::Counter = cb_obs::metrics::Counter::new(
    "cb_mc_explored_spills_total",
    "explored-set spill flushes across all searches",
);
static M_STATES_VISITED: cb_obs::metrics::Counter = cb_obs::metrics::Counter::new(
    "cb_mc_states_visited_total",
    "states visited across all searches",
);

/// Hard cap on merge shards: past this, per-shard reorder buffers cost
/// more than the dedup work they split.
pub const MAX_MERGE_SHARDS: usize = 16;

/// Tuning for the parallel engine.
#[derive(Clone, Debug)]
pub struct ParallelConfig {
    /// Worker threads for the check and expand phases. 1 runs the same
    /// algorithm inline (useful as a determinism control in tests); above
    /// 1, a search on a shared pool streams its per-job tasks to however
    /// many workers the pool provides.
    pub workers: usize,
    /// Merge shards for phase 3: the canonical dedup/merge is partitioned
    /// by successor-hash key range and the shards run concurrently, with
    /// a deterministic recombine reconstituting the exact sequential
    /// enqueue order. 0 (the default) picks `workers.min(4)`; 1 disables
    /// sharding (the PR 3 single-coordinator streamed merge). Any value
    /// yields bit-identical results — this knob trades merge parallelism
    /// against per-shard buffer overhead. Defaults from `CB_MERGE_SHARDS`
    /// (a single integer) when set.
    pub merge_shards: usize,
    /// Use the compacted explored-set slot layout (8 bytes/entry instead
    /// of 16: 48-bit fingerprint + 16-bit level in one word). Halves
    /// resident bytes per state; widens the accepted hash-collision class
    /// from 2^-64 to 2^-48 per pair. Defaults from `CB_COMPACT_EXPLORED`
    /// (`1`/`true`/`on`).
    pub compact_explored: bool,
    /// When set, spill the explored set to a sorted on-disk run whenever
    /// its resident footprint exceeds this many bytes (checked at level
    /// boundaries), so `max_states` can grow 10–100x without proportional
    /// RAM. Defaults from `CB_EXPLORED_SPILL_BYTES`.
    pub explored_spill_bytes: Option<usize>,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(8),
            merge_shards: env_usize("CB_MERGE_SHARDS").unwrap_or(0),
            compact_explored: env_flag("CB_COMPACT_EXPLORED"),
            explored_spill_bytes: env_usize("CB_EXPLORED_SPILL_BYTES"),
        }
    }
}

impl ParallelConfig {
    /// The merge-shard count a search will actually run with: the
    /// explicit setting, or `workers.min(4)` when auto (0), clamped to
    /// [`MAX_MERGE_SHARDS`].
    pub fn effective_merge_shards(&self) -> usize {
        let shards = if self.merge_shards == 0 {
            self.workers.min(4)
        } else {
            self.merge_shards
        };
        shards.clamp(1, MAX_MERGE_SHARDS)
    }
}

fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| matches!(v.trim(), "1" | "true" | "on"))
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok())
}

/// The merge shard a successor hash belongs to. Mixed before reducing
/// (the same Fibonacci decorrelation the explored table's probe start
/// uses) so structured hashes spread; equal hashes always co-locate,
/// which is what keeps each per-hash dedup decision shard-local.
fn shard_of(hash: u64, shards: usize) -> usize {
    ((hash.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize) % shards
}

/// One successor edge emitted by the expand phase.
struct EdgeOut<P: Protocol> {
    /// The successor state — carried only by the edge whose worker won the
    /// explored-table insertion race for `hash`.
    ///
    /// Winning the race is *not* the same as being the canonical
    /// (first-in-BFS-order) edge: two states with equal hashes hold the
    /// same in-flight **multiset** but possibly in different `Vec`
    /// orders, and that order is visible to event enumeration. The merge
    /// therefore keeps the winner's clone only when the winner *is* the
    /// canonical edge, and re-derives the canonical clone otherwise.
    state: Option<GlobalState<P>>,
    hash: u64,
    /// When the insert race was lost: the level stamp the winner carried.
    /// Equal to the current successor stamp iff the hash was admitted
    /// *this* level (by a later-canonical edge); smaller means a true
    /// duplicate of an earlier level.
    prior_level: u64,
    event: Event<P>,
    step: TraceStep,
}

/// Everything a worker produced for one expansion job.
struct JobOut<P: Protocol> {
    edges: Vec<EdgeOut<P>>,
    filtered: usize,
}

impl<P: Protocol> Default for JobOut<P> {
    fn default() -> Self {
        JobOut {
            edges: Vec::new(),
            filtered: 0,
        }
    }
}

/// One successor edge routed to a merge shard (sharded phase 3). Same
/// payload as [`EdgeOut`] plus the edge's position in its job's canonical
/// enumeration order, which the recombine sorts on.
struct ShardEdge<P: Protocol> {
    /// Index within the job's event-enumeration order.
    ord: u32,
    /// See [`EdgeOut::state`] — carried iff this edge won the insert race.
    state: Option<GlobalState<P>>,
    hash: u64,
    /// See [`EdgeOut::prior_level`].
    prior_level: u64,
    event: Event<P>,
    step: TraceStep,
}

/// An edge a merge shard admitted, tagged with its canonical coordinates
/// for the deterministic recombine.
struct AdmittedEdge<P: Protocol> {
    /// Canonical job index within the level.
    job: u32,
    /// Canonical event index within the job.
    ord: u32,
    state: GlobalState<P>,
    event: Event<P>,
    step: TraceStep,
}

/// One merge shard's output: the edges it admitted (already in canonical
/// (job, ord) order for its key range) plus its timing split.
struct ShardMerged<P: Protocol> {
    admitted: Vec<AdmittedEdge<P>>,
    duplicates: usize,
    busy: Duration,
    wait: Duration,
}

impl<P: Protocol> ShardMerged<P> {
    fn new() -> Self {
        ShardMerged {
            admitted: Vec::new(),
            duplicates: 0,
            busy: Duration::ZERO,
            wait: Duration::ZERO,
        }
    }
}

/// An expansion job: level-item index plus, under consequence prediction,
/// the nodes whose local-action block this item claimed (Fig. 8's
/// `localExplored` gate, resolved during the sequential visit phase).
struct ExpandJob {
    item: usize,
    allowed: Option<Vec<NodeId>>,
}

/// What the canonical visit decided about one level item.
enum VisitVerdict {
    /// Expand it (with the `localExplored` claims made for it, when the
    /// caller asked for them to be collected).
    Expand(Option<Vec<NodeId>>),
    /// Checked and recorded, but not expanded (violating or at the depth
    /// bound).
    Skip,
    /// A stop criterion fired at this item.
    Stop(StopReason),
}

/// How the visit handles Fig. 8's `localExplored` claims for an expanded
/// item.
enum VisitClaims {
    /// Resolve the claims now and return the allowed nodes — required
    /// when expansion happens later on another thread (phased mode), so
    /// the claims land in canonical item order regardless of scheduling.
    Collect,
    /// Leave the claims to the expansion itself, which follows
    /// immediately on this thread (fused mode) and gates enumeration
    /// through `localExplored` directly — same claims, same order, no
    /// per-item allocation.
    Inline,
}

/// The order-preserving channel between expand tasks and a merge
/// consumer: a reorder buffer indexed by job, consumed as a contiguous
/// prefix. Peak residency is the out-of-order window (how far completed
/// jobs run ahead of the canonical cursor), not the whole level. Generic
/// over the payload: whole [`JobOut`] batches in the unsharded merge,
/// per-shard [`ShardEdge`] slices in the sharded one.
struct MergeChannel<T> {
    inner: Mutex<MergeBuf<T>>,
    ready: Condvar,
}

struct MergeBuf<T> {
    slots: Vec<Option<T>>,
    /// Next canonical job index the consumer needs.
    next: usize,
}

impl<T> MergeChannel<T> {
    fn new(jobs: usize) -> Self {
        MergeChannel {
            inner: Mutex::new(MergeBuf {
                slots: (0..jobs).map(|_| None).collect(),
                next: 0,
            }),
            ready: Condvar::new(),
        }
    }

    /// Deposits job `j`'s batch; wakes the consumer iff `j` is the batch
    /// it is waiting on.
    fn deposit(&self, j: usize, out: T) {
        let mut b = self.inner.lock().expect("merge buffer poisoned");
        let wake = j == b.next;
        b.slots[j] = Some(out);
        drop(b);
        if wake {
            self.ready.notify_all();
        }
    }

    /// Takes the next in-canonical-order batch if it is already there.
    fn try_next(&self) -> Option<(usize, T)> {
        let mut b = self.inner.lock().expect("merge buffer poisoned");
        b.take_next()
    }

    /// Blocks until the next in-order batch arrives (deposits of that
    /// index notify) or `stop` is raised by a deadline-hitting task.
    fn wait_next(&self, stop: &AtomicBool) -> Option<(usize, T)> {
        let mut b = self.inner.lock().expect("merge buffer poisoned");
        loop {
            if let Some(out) = b.take_next() {
                return Some(out);
            }
            if b.next >= b.slots.len() || stop.load(Ordering::Relaxed) {
                return None;
            }
            b = self.ready.wait(b).expect("merge buffer poisoned");
        }
    }
}

impl<T> MergeBuf<T> {
    fn take_next(&mut self) -> Option<(usize, T)> {
        let j = self.next;
        if j < self.slots.len() {
            if let Some(out) = self.slots[j].take() {
                self.next += 1;
                return Some((j, out));
            }
        }
        None
    }
}

/// Ensures a batch lands for job `j` even if the expand task unwinds:
/// without a deposit a merge consumer would wait forever on a job whose
/// panic the pool has already captured for re-raising at scope exit.
struct DepositGuard<'a, T: Default> {
    chan: &'a MergeChannel<T>,
    j: usize,
    armed: bool,
}

impl<T: Default> Drop for DepositGuard<'_, T> {
    fn drop(&mut self) {
        if self.armed {
            self.chan.deposit(self.j, T::default());
        }
    }
}

/// [`DepositGuard`] for the sharded merge: every shard's channel must see
/// a deposit for job `j`, or its consumer would stall on the gap.
struct ShardDepositGuard<'a, T: Default> {
    chans: &'a [MergeChannel<T>],
    j: usize,
    armed: bool,
}

impl<T: Default> Drop for ShardDepositGuard<'_, T> {
    fn drop(&mut self) {
        if self.armed {
            for chan in self.chans {
                chan.deposit(self.j, T::default());
            }
        }
    }
}

impl<P: Protocol> Searcher<'_, P> {
    /// Runs the level-synchronous parallel search. Same violation set and
    /// canonical counterexample paths as [`Searcher::run`] for any worker
    /// count; scheduling only affects wall-clock numbers.
    ///
    /// Spawns a private [`WorkerPool`] for the duration of the search
    /// (one spawn per search, not per level). Callers that run many
    /// searches — or want several concurrent searches to share workers —
    /// should hold a pool and use [`Searcher::run_parallel_pooled`].
    pub fn run_parallel(&self, start: &GlobalState<P>, par: &ParallelConfig) -> SearchOutcome<P> {
        // The scope owner participates, so `workers` logical workers need
        // `workers - 1` pool threads; at 1 worker the pool is threadless
        // and the engine's inline phase paths never touch it.
        let pool = WorkerPool::new(par.workers.saturating_sub(1));
        self.run_parallel_pooled(start, par, &pool)
    }

    /// [`Searcher::run_parallel`] on a caller-provided shared pool: the
    /// check/expand phases draw workers from `pool` (the calling thread
    /// participates too), so concurrent independent searches — prediction,
    /// known-path replays, safety re-checks, sibling checker shards —
    /// multiplex over one set of threads instead of spawning their own.
    pub fn run_parallel_pooled(
        &self,
        start: &GlobalState<P>,
        par: &ParallelConfig,
        pool: &WorkerPool,
    ) -> SearchOutcome<P> {
        let workers = par.workers.max(1);
        let shards = par.effective_merge_shards();
        // Per-level phase timing on stderr, for perf investigation:
        // CB_PAR_TRACE=1 cargo bench -p cb-bench --bench parallel_scaling
        let trace = std::env::var_os("CB_PAR_TRACE").is_some();
        let t0 = Instant::now();
        let mut stats = SearchStats::default();
        let mut violations: Vec<FoundViolation<P>> = Vec::new();
        let mut arena: Vec<ArenaRec<P>> = Vec::new();
        // Pre-size the table from the state budget: successor inserts run
        // a few times the visit budget (duplicates included), and linear
        // probing wants headroom. The first segment is capped at 2^20
        // slots because it is allocated and zeroed up front even if a
        // deadline stops the search early — beyond that, segment chaining
        // (which doubles from the initial size) grows the table to
        // whatever the search actually reaches. Under a spill budget the
        // pre-size is further capped at half the budget, so the up-front
        // allocation alone never triggers (or exceeds) the spill bound.
        let mut cap_slots = self
            .config
            .max_states
            .map_or(1 << 16, |m| m.saturating_mul(4).clamp(1 << 12, 1 << 20));
        if let Some(budget) = par.explored_spill_bytes {
            let entry = if par.compact_explored { 8 } else { 16 };
            let fit = ((budget / 2) / entry).max(16).next_power_of_two() / 2;
            cap_slots = cap_slots.min(fit.max(16));
        }
        let mut explored = LockFreeExplored::with_options(cap_slots, par.compact_explored);
        let mut local_explored = std::collections::HashSet::new();
        // Hashes already decided (admitted or duplicate) by the merge in
        // the current level; allocation reused across levels.
        let mut seen_level: HashSet<u64> = HashSet::new();
        let mut depth_truncated = false;
        let mut stopped: Option<StopReason> = None;

        explored.insert_leveled(start.state_hash(), 0);
        // (state, parent arena rec) — all items of one level share a depth.
        let mut level: Vec<(GlobalState<P>, Option<usize>)> = vec![(start.clone(), None)];
        // Byte footprint of `level`, accumulated when the level was built
        // (while each state was cache-hot) instead of re-scanned here.
        let mut level_bytes = approx_state_bytes(start);
        stats.states_enqueued = 1;
        let mut depth = 0usize;

        'levels: while !level.is_empty() {
            let over_deadline =
                |deadline: Option<std::time::Duration>| deadline.is_some_and(|d| t0.elapsed() >= d);
            if over_deadline(self.config.deadline) {
                stopped = Some(StopReason::Deadline);
                break 'levels;
            }
            // Level boundaries are the engine's quiescent points: every
            // scope has joined, so the table can be spilled to disk here
            // under `&mut`. Best-effort — an I/O failure leaves all
            // entries resident and is simply retried next boundary.
            if par
                .explored_spill_bytes
                .is_some_and(|b| explored.resident_bytes() > b)
            {
                let _span = cb_obs::span("mc.spill_flush", "mc");
                let _ = explored.spill_to_disk();
            }
            stats.peak_frontier_bytes = stats.peak_frontier_bytes.max(level_bytes);

            // Only the prefix the visit loop can still afford to dequeue
            // is checked/expanded — the final BFS level is typically the
            // largest, and work beyond the budget would be discarded.
            let budget_left = self
                .config
                .max_states
                .map_or(level.len(), |max| max.saturating_sub(stats.states_visited))
                .min(level.len());
            let stamp = depth as u64 + 1;
            seen_level.clear();
            // Levels rarely shrink: the previous level's size is a cheap
            // floor that skips most of the growth reallocations.
            let mut next_level: Vec<(GlobalState<P>, Option<usize>)> =
                Vec::with_capacity(level.len());
            let mut next_bytes = 0usize;
            let pt = Instant::now();

            if workers == 1 {
                // Fused single-worker pass: check, visit, expand and
                // merge one item at a time, all in canonical order — the
                // sequential loop over a level vector, with no phase
                // passes re-walking the level and nothing buffered. The
                // level is consumed by value so each state drops right
                // after its expansion, matching the sequential engine's
                // memory rhythm instead of holding two full levels.
                // Inserts run through one batched handle for the whole
                // level (one segment-snapshot acquire, one len update).
                let items = level.len();
                let mut batch = explored.batch();
                for (i, item) in std::mem::take(&mut level).into_iter().enumerate() {
                    if i >= budget_left {
                        // Exactly the states the budget admits are
                        // visited; the rest of the level is cut off, as
                        // in the sequential engine.
                        stopped = Some(StopReason::StateLimit);
                        break;
                    }
                    if over_deadline(self.config.deadline) {
                        stopped = Some(StopReason::Deadline);
                        break 'levels;
                    }
                    let check = self.props.check(&item.0);
                    match self.visit_item(
                        check,
                        &item,
                        depth,
                        VisitClaims::Inline,
                        &mut local_explored,
                        &arena,
                        &mut violations,
                        &mut stats,
                        &mut depth_truncated,
                    ) {
                        VisitVerdict::Stop(r) => {
                            stopped = Some(r);
                            break;
                        }
                        VisitVerdict::Skip => {}
                        VisitVerdict::Expand(_) => self.expand_merge_fused(
                            &item,
                            &mut batch,
                            stamp,
                            &mut local_explored,
                            &mut arena,
                            &mut next_level,
                            &mut next_bytes,
                            &mut stats,
                        ),
                    }
                }
                drop(batch);
                if trace {
                    eprintln!("level d={} items={} fused={:?}", depth, items, pt.elapsed(),);
                }
            } else {
                // Phase 1: parallel property check over the budget prefix.
                let (checks, deadline_hit) =
                    self.check_level(&level[..budget_left], workers, t0, pool);
                let t_check = pt.elapsed();
                if deadline_hit {
                    stopped = Some(StopReason::Deadline);
                    break 'levels;
                }

                // Phase 2: sequential visit — stop criteria, violations,
                // and localExplored claims, all in canonical
                // (sequential-dequeue) order.
                let mut jobs: Vec<ExpandJob> = Vec::with_capacity(budget_left);
                let mut checks = checks.into_iter();
                for (i, item) in level.iter().enumerate() {
                    if i >= budget_left {
                        stopped = Some(StopReason::StateLimit);
                        break;
                    }
                    let check = checks.next().expect("budget prefix was checked");
                    match self.visit_item(
                        check,
                        item,
                        depth,
                        VisitClaims::Collect,
                        &mut local_explored,
                        &arena,
                        &mut violations,
                        &mut stats,
                        &mut depth_truncated,
                    ) {
                        VisitVerdict::Stop(r) => {
                            stopped = Some(r);
                            break;
                        }
                        VisitVerdict::Skip => {}
                        VisitVerdict::Expand(allowed) => jobs.push(ExpandJob { item: i, allowed }),
                    }
                }

                // Phase 3: expansion with the merge streamed behind it.
                // The stamp marks every successor admitted during this
                // level, so the canonical merge can tell "admitted this
                // level by a non-canonical edge" from "duplicate of an
                // earlier level" batch by batch.
                let pt3 = Instant::now();
                let deadline_hit = if shards > 1 && workers > 1 && jobs.len() > 1 {
                    self.expand_and_merge_level_sharded(
                        &level,
                        &jobs,
                        &explored,
                        stamp,
                        shards,
                        t0,
                        pool,
                        &mut arena,
                        &mut next_level,
                        &mut next_bytes,
                        &mut stats,
                    )
                } else {
                    self.expand_and_merge_level(
                        &level,
                        &jobs,
                        &explored,
                        stamp,
                        workers,
                        t0,
                        pool,
                        &mut seen_level,
                        &mut arena,
                        &mut next_level,
                        &mut next_bytes,
                        &mut stats,
                    )
                };
                if deadline_hit {
                    stopped = Some(StopReason::Deadline);
                    break 'levels;
                }

                if trace {
                    eprintln!(
                        "level d={} items={} jobs={} check={:?} stream={:?} (merge busy={:?} wait={:?} cum)",
                        depth,
                        level.len(),
                        jobs.len(),
                        t_check,
                        pt3.elapsed(),
                        stats.merge_busy,
                        stats.merge_wait,
                    );
                }
            }
            if stopped.is_some() {
                break 'levels;
            }
            level = next_level;
            level_bytes = next_bytes;
            depth += 1;
        }

        let stopped = match stopped {
            Some(r) => r,
            None if depth_truncated => StopReason::DepthLimit,
            None => StopReason::Exhausted,
        };
        stats.elapsed = t0.elapsed();
        stats.explored_resident_bytes = explored.resident_bytes();
        stats.explored_spilled_bytes = explored.spilled_bytes();
        stats.explored_spills = explored.spill_count();
        // Search-layer metrics: last-search gauges (explored-set memory
        // shape) and a cumulative visit counter, one bump per search.
        M_EXPLORED_RESIDENT.set(stats.explored_resident_bytes as u64);
        M_EXPLORED_SPILLED.set(stats.explored_spilled_bytes);
        M_SPILLS.add(stats.explored_spills as u64);
        M_STATES_VISITED.add(stats.states_visited as u64);
        stats.tree_bytes = arena.len() * size_of::<ArenaRec<P>>()
            + explored.len() * explored.entry_bytes()
            + local_explored.len() * 2 * size_of::<u64>();
        SearchOutcome {
            violations,
            stats,
            stopped,
        }
    }

    /// The canonical visit of one level item: record the visit, report a
    /// violation, apply the depth bound, and make the `localExplored`
    /// claims of Fig. 8 — exactly what the sequential loop does between
    /// dequeue and expansion. Shared by the fused single-worker pass and
    /// the phased multi-worker visit so the two paths cannot drift.
    #[allow(clippy::too_many_arguments)]
    fn visit_item(
        &self,
        check: Option<Violation>,
        item: &(GlobalState<P>, Option<usize>),
        depth: usize,
        claims: VisitClaims,
        local_explored: &mut std::collections::HashSet<u64>,
        arena: &[ArenaRec<P>],
        violations: &mut Vec<FoundViolation<P>>,
        stats: &mut SearchStats,
        depth_truncated: &mut bool,
    ) -> VisitVerdict {
        let (state, rec) = item;
        stats.record_visit(depth);
        if let Some(violation) = check {
            stats.violations_found += 1;
            violations.push(FoundViolation {
                violation,
                path: reconstruct(arena, *rec),
                depth,
            });
            if violations.len() >= self.config.max_violations {
                return VisitVerdict::Stop(StopReason::ViolationLimit);
            }
            return VisitVerdict::Skip; // violating states are not expanded
        }
        if self.config.max_depth.is_some_and(|d| depth >= d) {
            *depth_truncated = true;
            return VisitVerdict::Skip;
        }
        let allowed = match claims {
            VisitClaims::Inline => None,
            VisitClaims::Collect if !self.config.prune_local => None,
            VisitClaims::Collect => {
                let mut fresh = Vec::new();
                for &node in state.nodes.keys() {
                    let lh = state.local_hash(node).expect("node exists");
                    if local_explored.insert(lh) {
                        fresh.push(node);
                    } else {
                        stats.local_prunes += 1;
                    }
                }
                Some(fresh)
            }
        };
        VisitVerdict::Expand(allowed)
    }

    /// Fused single-worker expansion: enumerate (making the
    /// `localExplored` claims through the gate closure, exactly like the
    /// sequential loop), clone, apply, hash, insert — and merge each
    /// successor on the spot. Canonical order is the execution order, so
    /// the race winner is always the canonical edge and nothing is
    /// buffered.
    #[allow(clippy::too_many_arguments)]
    fn expand_merge_fused(
        &self,
        item: &(GlobalState<P>, Option<usize>),
        batch: &mut ExploredBatch<'_>,
        stamp: u64,
        local_explored: &mut std::collections::HashSet<u64>,
        arena: &mut Vec<ArenaRec<P>>,
        next_level: &mut Vec<(GlobalState<P>, Option<usize>)>,
        next_bytes: &mut usize,
        stats: &mut SearchStats,
    ) {
        let state = &item.0;
        let mut filtered = 0usize;
        let mut prunes = 0usize;
        let events = if self.config.prune_local {
            enumerate_gated(
                self.protocol,
                &self.config,
                state,
                |node| {
                    let lh = state.local_hash(node).expect("node exists");
                    if local_explored.insert(lh) {
                        true
                    } else {
                        prunes += 1;
                        false
                    }
                },
                &mut filtered,
            )
        } else {
            enumerate_gated(self.protocol, &self.config, state, |_| true, &mut filtered)
        };
        stats.filtered_events += filtered;
        stats.local_prunes += prunes;
        for event in events {
            let mut next = state.clone();
            let step = apply_event(self.protocol, &mut next, &event);
            let hash = next.state_hash();
            match batch.insert_leveled(hash, stamp) {
                Admission::Fresh => {
                    arena.push(ArenaRec {
                        parent: item.1,
                        event,
                        step,
                    });
                    *next_bytes += approx_state_bytes(&next);
                    next_level.push((next, Some(arena.len() - 1)));
                    stats.states_enqueued += 1;
                }
                Admission::Seen { .. } => stats.duplicates_hit += 1,
            }
        }
    }

    /// Phase 1: property-checks every level item, fanning out over
    /// `workers` threads (inline when 1). `search_t0` is the clock the
    /// whole search runs on; returns the checks plus whether the
    /// deadline fired mid-phase.
    fn check_level(
        &self,
        level: &[(GlobalState<P>, Option<usize>)],
        workers: usize,
        search_t0: Instant,
        pool: &WorkerPool,
    ) -> (Vec<Option<Violation>>, bool) {
        let over =
            |limit: Option<std::time::Duration>| limit.is_some_and(|d| search_t0.elapsed() >= d);
        if workers == 1 || level.len() <= 1 {
            let mut checks = Vec::with_capacity(level.len());
            for (s, _) in level {
                if over(self.config.deadline) {
                    return (checks, true);
                }
                checks.push(self.props.check(s));
            }
            return (checks, false);
        }
        let slots: Vec<Mutex<Option<Option<Violation>>>> =
            level.iter().map(|_| Mutex::new(None)).collect();
        let queues = StealQueues::split(workers, level.len());
        let deadline_hit = AtomicBool::new(false);
        let worker_loop = |w: usize| {
            while let Some(i) = queues.next(w) {
                if over(self.config.deadline) {
                    deadline_hit.store(true, Ordering::Relaxed);
                    return;
                }
                let v = self.props.check(&level[i].0);
                *slots[i].lock().expect("check slot poisoned") = Some(v);
            }
        };
        pool.scope(|scope| {
            for w in 1..workers {
                let worker_loop = &worker_loop;
                scope.spawn(move || worker_loop(w));
            }
            worker_loop(0);
        });
        if deadline_hit.load(Ordering::Relaxed) {
            return (Vec::new(), true);
        }
        (
            slots
                .into_iter()
                .map(|s| {
                    s.into_inner()
                        .expect("check slot poisoned")
                        .expect("checked")
                })
                .collect(),
            false,
        )
    }

    /// Executes one expansion job: enumerate, clone, apply, hash, and
    /// race each successor into the explored table — one CAS per
    /// successor through a per-job [`ExploredBatch`], so the segment
    /// snapshot and the shared-length update cost one synchronization
    /// edge per batch instead of one per state.
    fn expand_one(
        &self,
        level: &[(GlobalState<P>, Option<usize>)],
        job: &ExpandJob,
        explored: &LockFreeExplored,
        stamp: u64,
    ) -> JobOut<P> {
        let state = &level[job.item].0;
        let mut filtered = 0usize;
        let events = match &job.allowed {
            Some(nodes) => enumerate_gated(
                self.protocol,
                &self.config,
                state,
                |n| nodes.contains(&n),
                &mut filtered,
            ),
            None => enumerate_gated(self.protocol, &self.config, state, |_| true, &mut filtered),
        };
        let mut batch = explored.batch();
        let mut edges = Vec::with_capacity(events.len());
        for event in events {
            let mut next = state.clone();
            let step = apply_event(self.protocol, &mut next, &event);
            let hash = next.state_hash();
            let (state, prior_level) = match batch.insert_leveled(hash, stamp) {
                Admission::Fresh => (Some(next), 0),
                Admission::Seen { level } => (None, level),
            };
            edges.push(EdgeOut {
                state,
                hash,
                prior_level,
                event,
                step,
            });
        }
        JobOut { edges, filtered }
    }

    /// [`Self::expand_one`] for the sharded merge: identical expansion,
    /// but each successor edge is routed to the merge shard owning its
    /// hash (tagged with its in-job order for the recombine). Returns the
    /// per-shard edge lists plus the job's filtered-event count.
    fn expand_one_sharded(
        &self,
        level: &[(GlobalState<P>, Option<usize>)],
        job: &ExpandJob,
        explored: &LockFreeExplored,
        stamp: u64,
        shards: usize,
    ) -> (Vec<Vec<ShardEdge<P>>>, usize) {
        let state = &level[job.item].0;
        let mut filtered = 0usize;
        let events = match &job.allowed {
            Some(nodes) => enumerate_gated(
                self.protocol,
                &self.config,
                state,
                |n| nodes.contains(&n),
                &mut filtered,
            ),
            None => enumerate_gated(self.protocol, &self.config, state, |_| true, &mut filtered),
        };
        let mut per: Vec<Vec<ShardEdge<P>>> = (0..shards).map(|_| Vec::new()).collect();
        let mut batch = explored.batch();
        for (ord, event) in events.into_iter().enumerate() {
            let mut next = state.clone();
            let step = apply_event(self.protocol, &mut next, &event);
            let hash = next.state_hash();
            let (state, prior_level) = match batch.insert_leveled(hash, stamp) {
                Admission::Fresh => (Some(next), 0),
                Admission::Seen { level } => (None, level),
            };
            per[shard_of(hash, shards)].push(ShardEdge {
                ord: ord as u32,
                state,
                hash,
                prior_level,
                event,
                step,
            });
        }
        (per, filtered)
    }

    /// Applies the canonical enqueue-time dedup to one job's edge batch,
    /// in canonical order. Exactly the bookkeeping the sequential loop
    /// performs at its `explored.insert`: the canonically-first edge to a
    /// hash admitted this level becomes its parent (with the canonical
    /// clone — re-derived when the insert race went to a non-canonical
    /// edge); everything else is a duplicate.
    #[allow(clippy::too_many_arguments)]
    fn merge_job(
        &self,
        level: &[(GlobalState<P>, Option<usize>)],
        item: usize,
        out: JobOut<P>,
        stamp_cmp: u64,
        seen_level: &mut HashSet<u64>,
        arena: &mut Vec<ArenaRec<P>>,
        next_level: &mut Vec<(GlobalState<P>, Option<usize>)>,
        next_bytes: &mut usize,
        stats: &mut SearchStats,
    ) {
        stats.filtered_events += out.filtered;
        for edge in out.edges {
            if !seen_level.insert(edge.hash) {
                // A canonically-earlier edge this level already decided
                // this hash (admitted it or proved it a duplicate).
                stats.duplicates_hit += 1;
                continue;
            }
            let admitted_this_level = edge.state.is_some() || edge.prior_level == stamp_cmp;
            if !admitted_this_level {
                stats.duplicates_hit += 1;
                continue;
            }
            // This edge is canonically first to a hash first reached this
            // level: it is the parent the sequential engine would record.
            // Keep its own clone only if it also won the insert race —
            // equal hashes guarantee equal node states and equal in-flight
            // *multisets*, but not equal in-flight `Vec` order, and that
            // order steers downstream event enumeration.
            let state = match edge.state {
                Some(state) => state,
                None => {
                    let mut s = level[item].0.clone();
                    apply_event(self.protocol, &mut s, &edge.event);
                    s
                }
            };
            arena.push(ArenaRec {
                parent: level[item].1,
                event: edge.event,
                step: edge.step,
            });
            *next_bytes += approx_state_bytes(&state);
            next_level.push((state, Some(arena.len() - 1)));
            stats.states_enqueued += 1;
        }
    }

    /// Phase 3: expands every job and merges the resulting edge batches
    /// in canonical job order, overlapped. Returns whether the deadline
    /// fired mid-phase (in which case the partial merge results are
    /// discarded by the caller).
    #[allow(clippy::too_many_arguments)]
    fn expand_and_merge_level(
        &self,
        level: &[(GlobalState<P>, Option<usize>)],
        jobs: &[ExpandJob],
        explored: &LockFreeExplored,
        stamp: u64,
        workers: usize,
        search_t0: Instant,
        pool: &WorkerPool,
        seen_level: &mut HashSet<u64>,
        arena: &mut Vec<ArenaRec<P>>,
        next_level: &mut Vec<(GlobalState<P>, Option<usize>)>,
        next_bytes: &mut usize,
        stats: &mut SearchStats,
    ) -> bool {
        let _span = cb_obs::span("mc.expand", "mc");
        let over =
            |limit: Option<std::time::Duration>| limit.is_some_and(|d| search_t0.elapsed() >= d);
        // The stamp as the table stores it (compact layouts saturate the
        // level field): what `prior_level` readbacks must be compared to.
        let stamp_cmp = explored.stored_level(stamp);

        if workers == 1 || jobs.len() <= 1 {
            // Inline fast path: expand and merge interleave per job. The
            // canonical order *is* the execution order, so the race
            // winner is always the canonical edge and nothing needs
            // buffering — this is the sequential loop minus the frontier.
            for job in jobs {
                if over(self.config.deadline) {
                    return true;
                }
                let out = self.expand_one(level, job, explored, stamp);
                self.merge_job(
                    level, job.item, out, stamp_cmp, seen_level, arena, next_level, next_bytes,
                    stats,
                );
            }
            return false;
        }

        let chan: MergeChannel<JobOut<P>> = MergeChannel::new(jobs.len());
        let stop = AtomicBool::new(false);
        let deadline_hit = AtomicBool::new(false);
        pool.scope(|scope: &PoolScope<'_, '_>| {
            for (j, job) in jobs.iter().enumerate() {
                let chan = &chan;
                let stop = &stop;
                let deadline_hit = &deadline_hit;
                scope.spawn(move || {
                    let mut guard = DepositGuard {
                        chan,
                        j,
                        armed: true,
                    };
                    if stop.load(Ordering::Relaxed) {
                        return; // guard deposits an empty batch
                    }
                    if over(self.config.deadline) {
                        deadline_hit.store(true, Ordering::Relaxed);
                        stop.store(true, Ordering::Relaxed);
                        return;
                    }
                    let out = self.expand_one(level, job, explored, stamp);
                    guard.armed = false;
                    chan.deposit(j, out);
                });
            }

            // The coordinator: merge batches in canonical order while the
            // remaining jobs expand. Starvation never blocks progress —
            // if the next canonical batch is missing and one of our jobs
            // is still queued, the coordinator runs it itself
            // (`help_one`), which also preserves canonical-completion
            // order on a zero-thread pool.
            let mut merged = 0usize;
            while merged < jobs.len() {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let got = match chan.try_next() {
                    Some(got) => Some(got),
                    None => {
                        if scope.help_one() {
                            // Ran one of our own queued jobs instead of
                            // sleeping — expansion work, attributed to
                            // neither merge timer.
                            continue;
                        }
                        // The needed job is running on another thread:
                        // wait for its deposit (deposits of the awaited
                        // index notify).
                        let tw = Instant::now();
                        let got = chan.wait_next(&stop);
                        stats.merge_wait += tw.elapsed();
                        got
                    }
                };
                let Some((j, out)) = got else {
                    break; // stop raised (deadline in a task)
                };
                let tb = Instant::now();
                self.merge_job(
                    level,
                    jobs[j].item,
                    out,
                    stamp_cmp,
                    seen_level,
                    arena,
                    next_level,
                    next_bytes,
                    stats,
                );
                stats.merge_busy += tb.elapsed();
                merged += 1;
                if over(self.config.deadline) {
                    deadline_hit.store(true, Ordering::Relaxed);
                    stop.store(true, Ordering::Relaxed);
                    break;
                }
            }
            // Scope exit runs any still-queued tasks (they observe `stop`
            // and deposit empty batches) and waits for in-flight ones.
        });
        deadline_hit.load(Ordering::Relaxed)
    }

    /// The per-shard slice of [`Self::merge_job`]: applies the canonical
    /// enqueue-time dedup to the shard's share of one job's edges, in
    /// canonical (job, ord) order. Equal hashes always land in the same
    /// shard, so every per-hash decision — first-canonical-edge wins,
    /// admitted-this-level vs earlier-duplicate, canonical-clone
    /// re-derivation — is taken with exactly the same inputs the
    /// single-coordinator merge would use; only decisions about
    /// *different* hashes run concurrently.
    #[allow(clippy::too_many_arguments)]
    fn merge_shard_batch(
        &self,
        level: &[(GlobalState<P>, Option<usize>)],
        item: usize,
        job: u32,
        edges: Vec<ShardEdge<P>>,
        stamp_cmp: u64,
        seen: &mut HashSet<u64>,
        out: &mut ShardMerged<P>,
    ) {
        for edge in edges {
            if !seen.insert(edge.hash) {
                out.duplicates += 1;
                continue;
            }
            let admitted_this_level = edge.state.is_some() || edge.prior_level == stamp_cmp;
            if !admitted_this_level {
                out.duplicates += 1;
                continue;
            }
            // Canonically first to a hash first reached this level: keep
            // its clone if it also won the insert race, else re-derive
            // the canonical clone (see `merge_job` — the rule survives
            // per shard because the race loser's hash equality guarantee
            // is shard-independent).
            let state = match edge.state {
                Some(state) => state,
                None => {
                    let mut s = level[item].0.clone();
                    apply_event(self.protocol, &mut s, &edge.event);
                    s
                }
            };
            out.admitted.push(AdmittedEdge {
                job,
                ord: edge.ord,
                state,
                event: edge.event,
                step: edge.step,
            });
        }
    }

    /// A tail merge shard: consumes its channel in canonical job order
    /// and merges its key range. Runs as a pool task spawned *after* all
    /// expand tasks of the level (see `expand_and_merge_level_sharded`
    /// for why that ordering makes blocking here deadlock-free).
    fn merge_shard(
        &self,
        level: &[(GlobalState<P>, Option<usize>)],
        jobs: &[ExpandJob],
        chan: &MergeChannel<Vec<ShardEdge<P>>>,
        stamp_cmp: u64,
        stop: &AtomicBool,
    ) -> ShardMerged<P> {
        let _span = cb_obs::span("mc.merge_shard", "mc");
        let mut out = ShardMerged::new();
        let mut seen: HashSet<u64> = HashSet::new();
        let mut merged = 0usize;
        while merged < jobs.len() {
            if stop.load(Ordering::Relaxed) {
                break; // partial results are discarded on deadline stops
            }
            let got = match chan.try_next() {
                Some(got) => Some(got),
                None => {
                    let tw = Instant::now();
                    let got = chan.wait_next(stop);
                    out.wait += tw.elapsed();
                    got
                }
            };
            let Some((j, edges)) = got else {
                break;
            };
            let tb = Instant::now();
            self.merge_shard_batch(
                level,
                jobs[j].item,
                j as u32,
                edges,
                stamp_cmp,
                &mut seen,
                &mut out,
            );
            out.busy += tb.elapsed();
            merged += 1;
        }
        out
    }

    /// Phase 3, sharded: expansion tasks route each successor edge to the
    /// merge shard owning its hash; the shards dedup/merge their key
    /// ranges concurrently (shard 0 streamed by the coordinator, shards
    /// 1..k as pool tasks), and a sequential recombine k-way-merges the
    /// admitted edges back into the exact sequential enqueue order.
    ///
    /// Deadlock freedom: tail merge tasks block on deposits, so they are
    /// spawned *after* every expand task. The pool queue is FIFO — by the
    /// time any worker (or the helping coordinator) pops a merge task,
    /// every expand task has already been popped, so a blocked merger
    /// only ever waits on tasks that are running or finished, never on
    /// one queued behind it. This holds at any pool size, including a
    /// zero-thread pool where the coordinator runs everything via
    /// `help_one` (FIFO again: expands drain first, and a merge task run
    /// inline then finds all its deposits already present).
    #[allow(clippy::too_many_arguments)]
    fn expand_and_merge_level_sharded(
        &self,
        level: &[(GlobalState<P>, Option<usize>)],
        jobs: &[ExpandJob],
        explored: &LockFreeExplored,
        stamp: u64,
        shards: usize,
        search_t0: Instant,
        pool: &WorkerPool,
        arena: &mut Vec<ArenaRec<P>>,
        next_level: &mut Vec<(GlobalState<P>, Option<usize>)>,
        next_bytes: &mut usize,
        stats: &mut SearchStats,
    ) -> bool {
        let _span = cb_obs::span("mc.expand", "mc");
        let over =
            |limit: Option<std::time::Duration>| limit.is_some_and(|d| search_t0.elapsed() >= d);
        let stamp_cmp = explored.stored_level(stamp);
        let chans: Vec<MergeChannel<Vec<ShardEdge<P>>>> =
            (0..shards).map(|_| MergeChannel::new(jobs.len())).collect();
        let stop = AtomicBool::new(false);
        let deadline_hit = AtomicBool::new(false);
        let filtered = AtomicUsize::new(0);
        let tail_out: Vec<Mutex<Option<ShardMerged<P>>>> =
            (1..shards).map(|_| Mutex::new(None)).collect();
        let mut out0 = ShardMerged::new();
        pool.scope(|scope: &PoolScope<'_, '_>| {
            for (j, job) in jobs.iter().enumerate() {
                let chans = &chans;
                let stop = &stop;
                let deadline_hit = &deadline_hit;
                let filtered = &filtered;
                scope.spawn(move || {
                    let mut guard = ShardDepositGuard {
                        chans,
                        j,
                        armed: true,
                    };
                    if stop.load(Ordering::Relaxed) {
                        return; // guard deposits empty slices to every shard
                    }
                    if over(self.config.deadline) {
                        deadline_hit.store(true, Ordering::Relaxed);
                        stop.store(true, Ordering::Relaxed);
                        return;
                    }
                    let (per, f) = self.expand_one_sharded(level, job, explored, stamp, shards);
                    filtered.fetch_add(f, Ordering::Relaxed);
                    guard.armed = false;
                    for (s, edges) in per.into_iter().enumerate() {
                        chans[s].deposit(j, edges);
                    }
                });
            }
            // Tail mergers — spawned after every expand task; the FIFO
            // queue order is load-bearing (see the method docs).
            for (s, slot) in tail_out.iter().enumerate() {
                let chans = &chans;
                let stop = &stop;
                scope.spawn(move || {
                    let merged = self.merge_shard(level, jobs, &chans[s + 1], stamp_cmp, stop);
                    *slot.lock().expect("shard output slot poisoned") = Some(merged);
                });
            }
            // The coordinator streams shard 0, helping with queued work
            // (expands first, FIFO) when its next batch is not ready.
            let mut seen: HashSet<u64> = HashSet::new();
            let mut merged = 0usize;
            while merged < jobs.len() {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let got = match chans[0].try_next() {
                    Some(got) => Some(got),
                    None => {
                        if scope.help_one() {
                            continue;
                        }
                        let tw = Instant::now();
                        let got = chans[0].wait_next(&stop);
                        out0.wait += tw.elapsed();
                        got
                    }
                };
                let Some((j, edges)) = got else {
                    break;
                };
                let tb = Instant::now();
                self.merge_shard_batch(
                    level,
                    jobs[j].item,
                    j as u32,
                    edges,
                    stamp_cmp,
                    &mut seen,
                    &mut out0,
                );
                out0.busy += tb.elapsed();
                merged += 1;
                if over(self.config.deadline) {
                    deadline_hit.store(true, Ordering::Relaxed);
                    stop.store(true, Ordering::Relaxed);
                    break;
                }
            }
        });
        if deadline_hit.load(Ordering::Relaxed) {
            return true;
        }
        stats.filtered_events += filtered.load(Ordering::Relaxed);

        // Deterministic recombine: every shard's admitted list is already
        // sorted by (job, ord) — the canonical order restricted to its
        // key range — so a k-way merge on (job, ord) reconstitutes the
        // exact sequential enqueue order, and arena indices / next-level
        // positions come out bit-identical to the unsharded merge.
        let _rec_span = cb_obs::span("mc.recombine", "mc");
        let t_rec = Instant::now();
        let mut outs: Vec<ShardMerged<P>> = Vec::with_capacity(shards);
        outs.push(out0);
        for slot in tail_out {
            outs.push(
                slot.into_inner()
                    .expect("shard output slot poisoned")
                    .expect("tail shard merged (scope joined)"),
            );
        }
        if stats.merge_shard_busy.len() < shards {
            stats.merge_shard_busy.resize(shards, Duration::ZERO);
        }
        for (s, merged) in outs.iter().enumerate() {
            stats.duplicates_hit += merged.duplicates;
            stats.merge_busy += merged.busy;
            stats.merge_shard_busy[s] += merged.busy;
        }
        stats.merge_wait += outs[0].wait;
        stats.merge_shards = shards;
        let mut iters: Vec<_> = outs
            .into_iter()
            .map(|m| m.admitted.into_iter().peekable())
            .collect();
        loop {
            let mut best: Option<(usize, (u32, u32))> = None;
            for (s, it) in iters.iter_mut().enumerate() {
                if let Some(edge) = it.peek() {
                    let key = (edge.job, edge.ord);
                    if best.is_none_or(|(_, bk)| key < bk) {
                        best = Some((s, key));
                    }
                }
            }
            let Some((s, _)) = best else { break };
            let edge = iters[s].next().expect("peeked edge");
            arena.push(ArenaRec {
                parent: level[jobs[edge.job as usize].item].1,
                event: edge.event,
                step: edge.step,
            });
            *next_bytes += approx_state_bytes(&edge.state);
            next_level.push((edge.state, Some(arena.len() - 1)));
            stats.states_enqueued += 1;
        }
        stats.merge_recombine += t_rec.elapsed();
        false
    }
}

/// Runs the exhaustive search of Fig. 5 on the parallel engine.
pub fn find_errors_parallel<P: Protocol>(
    protocol: &P,
    props: &cb_model::PropertySet<P>,
    start: &GlobalState<P>,
    config: SearchConfig,
    par: &ParallelConfig,
) -> SearchOutcome<P> {
    Searcher::new(
        protocol,
        props,
        SearchConfig {
            prune_local: false,
            ..config
        },
    )
    .run_parallel(start, par)
}

/// Runs consequence prediction (Fig. 8) on the parallel engine.
pub fn find_consequences_parallel<P: Protocol>(
    protocol: &P,
    props: &cb_model::PropertySet<P>,
    start: &GlobalState<P>,
    config: SearchConfig,
    par: &ParallelConfig,
) -> SearchOutcome<P> {
    Searcher::new(
        protocol,
        props,
        SearchConfig {
            prune_local: true,
            ..config
        },
    )
    .run_parallel(start, par)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{find_consequences, find_errors};
    use crate::SearchConfig;
    use cb_model::testproto::{max_pings_property, Ping};
    use cb_model::{ExploreOptions, NodeId, PropertySet};

    fn sys(n: u32) -> (Ping, GlobalState<Ping>) {
        let cfg = Ping {
            kick_target: NodeId(0),
            kick_enabled: true,
        };
        let gs = GlobalState::init(&cfg, (0..n).map(NodeId));
        (cfg, gs)
    }

    fn props(limit: u32) -> PropertySet<Ping> {
        PropertySet::new().with(max_pings_property(limit))
    }

    fn cfg() -> SearchConfig {
        SearchConfig {
            explore: ExploreOptions::minimal(),
            ..SearchConfig::default()
        }
    }

    fn outcome_fingerprint<P: Protocol>(
        out: &SearchOutcome<P>,
    ) -> (Vec<String>, usize, usize, usize) {
        (
            out.violations.iter().map(|v| v.scenario()).collect(),
            out.stats.states_visited,
            out.stats.states_enqueued,
            out.stats.duplicates_hit,
        )
    }

    #[test]
    fn parallel_bfs_matches_sequential_exactly() {
        let (p, gs) = sys(3);
        let pr = props(2);
        let seq = find_errors(&p, &pr, &gs, cfg());
        for workers in [1, 2, 4, 7] {
            let par = find_errors_parallel(
                &p,
                &pr,
                &gs,
                cfg(),
                &ParallelConfig {
                    workers,
                    ..ParallelConfig::default()
                },
            );
            assert_eq!(
                outcome_fingerprint(&seq),
                outcome_fingerprint(&par),
                "workers={workers}"
            );
            assert_eq!(seq.stopped, par.stopped);
        }
    }

    #[test]
    fn parallel_cp_matches_sequential_exactly() {
        let (p, gs) = sys(4);
        let pr = props(3);
        let base = SearchConfig {
            max_depth: Some(6),
            ..cfg()
        };
        let seq = find_consequences(&p, &pr, &gs, base.clone());
        for workers in [1, 4] {
            let par = find_consequences_parallel(
                &p,
                &pr,
                &gs,
                base.clone(),
                &ParallelConfig {
                    workers,
                    ..ParallelConfig::default()
                },
            );
            assert_eq!(
                outcome_fingerprint(&seq),
                outcome_fingerprint(&par),
                "workers={workers}"
            );
            assert_eq!(seq.stats.local_prunes, par.stats.local_prunes);
        }
    }

    #[test]
    fn parallel_exhaustion_matches_without_violations() {
        let (p, gs) = sys(4);
        let pr = props(u32::MAX);
        let base = SearchConfig {
            max_depth: Some(5),
            max_states: Some(1_000_000),
            ..cfg()
        };
        let seq = find_errors(&p, &pr, &gs, base.clone());
        let par = find_errors_parallel(
            &p,
            &pr,
            &gs,
            base,
            &ParallelConfig {
                workers: 4,
                ..ParallelConfig::default()
            },
        );
        assert_eq!(outcome_fingerprint(&seq), outcome_fingerprint(&par));
        assert_eq!(seq.stopped, par.stopped);
        assert_eq!(seq.stats.per_depth, par.stats.per_depth);
    }

    #[test]
    fn parallel_state_budget_matches_sequential() {
        let (p, gs) = sys(4);
        let pr = props(u32::MAX);
        let base = SearchConfig {
            max_states: Some(100),
            ..cfg()
        };
        let seq = find_errors(&p, &pr, &gs, base.clone());
        let par = find_errors_parallel(
            &p,
            &pr,
            &gs,
            base,
            &ParallelConfig {
                workers: 4,
                ..ParallelConfig::default()
            },
        );
        assert_eq!(seq.stopped, StopReason::StateLimit);
        assert_eq!(outcome_fingerprint(&seq), outcome_fingerprint(&par));
    }

    #[test]
    fn parallel_multi_violation_budget_matches() {
        let (p, gs) = sys(3);
        let pr = props(2);
        let base = SearchConfig {
            max_violations: 5,
            max_depth: Some(6),
            ..cfg()
        };
        let seq = find_errors(&p, &pr, &gs, base.clone());
        let par = find_errors_parallel(
            &p,
            &pr,
            &gs,
            base,
            &ParallelConfig {
                workers: 4,
                ..ParallelConfig::default()
            },
        );
        assert!(seq.violations.len() > 1, "multiple violations in budget");
        assert_eq!(outcome_fingerprint(&seq), outcome_fingerprint(&par));
    }

    #[test]
    fn parallel_deadline_stops() {
        let (p, gs) = sys(6);
        let pr = props(u32::MAX);
        let out = find_errors_parallel(
            &p,
            &pr,
            &gs,
            SearchConfig {
                deadline: Some(std::time::Duration::from_millis(0)),
                max_states: None,
                ..cfg()
            },
            &ParallelConfig {
                workers: 4,
                ..ParallelConfig::default()
            },
        );
        assert_eq!(out.stopped, StopReason::Deadline);
    }

    #[test]
    fn merge_timers_populated_only_in_streamed_mode() {
        let (p, gs) = sys(4);
        let pr = props(u32::MAX);
        let base = SearchConfig {
            max_depth: Some(5),
            ..cfg()
        };
        let seq = find_errors(&p, &pr, &gs, base.clone());
        assert_eq!(seq.stats.merge_busy, std::time::Duration::ZERO);
        assert_eq!(seq.stats.merge_wait, std::time::Duration::ZERO);
        let inline = find_errors_parallel(
            &p,
            &pr,
            &gs,
            base.clone(),
            &ParallelConfig {
                workers: 1,
                ..ParallelConfig::default()
            },
        );
        assert_eq!(inline.stats.merge_busy, std::time::Duration::ZERO);
        let streamed = find_errors_parallel(
            &p,
            &pr,
            &gs,
            base,
            &ParallelConfig {
                workers: 4,
                ..ParallelConfig::default()
            },
        );
        assert!(
            streamed.stats.merge_busy > std::time::Duration::ZERO,
            "streamed coordinator recorded merge work"
        );
    }

    #[test]
    fn merge_shard_matrix_matches_sequential() {
        let (p, gs) = sys(4);
        let pr = props(u32::MAX);
        let base = SearchConfig {
            max_depth: Some(5),
            ..cfg()
        };
        let seq = find_errors(&p, &pr, &gs, base.clone());
        for shards in [1, 2, 4, 7] {
            let par = find_errors_parallel(
                &p,
                &pr,
                &gs,
                base.clone(),
                &ParallelConfig {
                    workers: 4,
                    merge_shards: shards,
                    ..ParallelConfig::default()
                },
            );
            assert_eq!(
                outcome_fingerprint(&seq),
                outcome_fingerprint(&par),
                "shards={shards}"
            );
            assert_eq!(seq.stats.per_depth, par.stats.per_depth, "shards={shards}");
            if shards > 1 {
                assert_eq!(par.stats.merge_shards, shards, "sharded path ran");
                assert_eq!(
                    par.stats.merge_shard_busy.len(),
                    shards,
                    "per-shard busy recorded"
                );
            } else {
                assert_eq!(par.stats.merge_shards, 0, "unsharded path at 1 shard");
            }
        }
    }

    #[test]
    fn compact_and_spill_engine_matches_sequential() {
        let (p, gs) = sys(4);
        let pr = props(u32::MAX);
        let base = SearchConfig {
            max_depth: Some(5),
            ..cfg()
        };
        let seq = find_errors(&p, &pr, &gs, base.clone());
        for workers in [1, 4] {
            // A 1 KiB budget is crossed within the first few levels even
            // at this test's small state count, so the set spills at
            // level boundaries throughout the run.
            let par = find_errors_parallel(
                &p,
                &pr,
                &gs,
                base.clone(),
                &ParallelConfig {
                    workers,
                    compact_explored: true,
                    explored_spill_bytes: Some(1 << 10),
                    ..ParallelConfig::default()
                },
            );
            assert_eq!(
                outcome_fingerprint(&seq),
                outcome_fingerprint(&par),
                "workers={workers}"
            );
            assert_eq!(seq.stats.per_depth, par.stats.per_depth);
            assert!(par.stats.explored_spills >= 1, "budget forced a spill");
            assert!(par.stats.explored_spilled_bytes > 0);
            assert!(par.stats.explored_resident_bytes > 0);
        }
    }

    #[test]
    fn default_config_has_workers() {
        assert!(ParallelConfig::default().workers >= 1);
        let auto = ParallelConfig {
            workers: 6,
            merge_shards: 0,
            ..ParallelConfig::default()
        };
        assert_eq!(auto.effective_merge_shards(), 4, "auto caps at 4");
        let wide = ParallelConfig {
            merge_shards: 99,
            ..ParallelConfig::default()
        };
        assert_eq!(wide.effective_merge_shards(), MAX_MERGE_SHARDS);
    }
}
