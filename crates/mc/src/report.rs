//! Search outcomes: predicted violations with their event paths.
//!
//! The model checker "reports any violation in the form of a sequence of
//! events that leads to an erroneous state" (§3). That sequence is exactly
//! what execution steering needs: its first steerable event determines the
//! filter to install, and the whole path is kept for fast replay in later
//! checker rounds (§4).

use std::fmt;

use cb_model::{Event, Protocol, TraceStep, Violation};

use crate::stats::SearchStats;

/// One step of a predicted error path: the abstract event plus what applying
/// it did.
#[derive(Clone, Debug)]
pub struct PathStep<P: Protocol> {
    /// The event, with indices valid relative to replaying the prefix.
    pub event: Event<P>,
    /// The concrete effect the event had when the path was discovered.
    pub step: TraceStep,
}

impl<P: Protocol> fmt::Display for PathStep<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.step)
    }
}

/// A violation discovered by a search, with the path that reaches it from
/// the search's start state.
#[derive(Clone, Debug)]
pub struct FoundViolation<P: Protocol> {
    /// The violated property and its message.
    pub violation: Violation,
    /// Events from the start state to the violating state, in order.
    pub path: Vec<PathStep<P>>,
    /// Depth (path length) at which the violation occurs.
    pub depth: usize,
}

impl<P: Protocol> FoundViolation<P> {
    /// Renders the path as a numbered scenario, in the style of the paper's
    /// walk-throughs ("1. n13 resets, 2. n13 sends Join to n1, ...").
    pub fn scenario(&self) -> String {
        let mut s = format!("{}\n", self.violation);
        for (i, step) in self.path.iter().enumerate() {
            s.push_str(&format!("  {}. {}\n", i + 1, step));
        }
        s
    }
}

/// Why a search stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// Every reachable state (under the configured events) was explored.
    Exhausted,
    /// The depth bound was reached.
    DepthLimit,
    /// The visited-state budget was exhausted.
    StateLimit,
    /// The wall-clock deadline passed.
    Deadline,
    /// The requested number of violations was found.
    ViolationLimit,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StopReason::Exhausted => "state space exhausted",
            StopReason::DepthLimit => "depth limit",
            StopReason::StateLimit => "state budget",
            StopReason::Deadline => "deadline",
            StopReason::ViolationLimit => "violation budget",
        };
        f.write_str(s)
    }
}

/// The complete result of one search run.
#[derive(Clone, Debug)]
pub struct SearchOutcome<P: Protocol> {
    /// Violations discovered, in discovery order (BFS order: shallowest
    /// first).
    pub violations: Vec<FoundViolation<P>>,
    /// Counters and memory accounting.
    pub stats: SearchStats,
    /// Why the search ended.
    pub stopped: StopReason,
}

impl<P: Protocol> SearchOutcome<P> {
    /// The first (shallowest) violation, if any.
    pub fn first(&self) -> Option<&FoundViolation<P>> {
        self.violations.first()
    }

    /// True if no violation was found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_model::testproto::Ping;
    use cb_model::NodeId;

    #[test]
    fn scenario_renders_numbered_steps() {
        let fv: FoundViolation<Ping> = FoundViolation {
            violation: Violation {
                property: "P".into(),
                node: Some(NodeId(9)),
                message: "bad".into(),
            },
            path: vec![
                PathStep {
                    event: Event::Reset {
                        node: NodeId(13),
                        notify: false,
                    },
                    step: TraceStep::ResetDone {
                        node: NodeId(13),
                        notify: false,
                    },
                },
                PathStep {
                    event: Event::Deliver { index: 0 },
                    step: TraceStep::Delivered {
                        kind: "Join",
                        src: NodeId(13),
                        dst: NodeId(1),
                    },
                },
            ],
            depth: 2,
        };
        let s = fv.scenario();
        assert!(s.contains("[P] at n9: bad"));
        assert!(s.contains("1. n13 resets (silent)"));
        assert!(s.contains("2. deliver Join n13→n1"));
        assert_eq!(fv.path[1].to_string(), "deliver Join n13→n1");
    }

    #[test]
    fn stop_reasons_render() {
        assert_eq!(StopReason::Exhausted.to_string(), "state space exhausted");
        assert_eq!(StopReason::Deadline.to_string(), "deadline");
    }

    #[test]
    fn outcome_accessors() {
        let out: SearchOutcome<Ping> = SearchOutcome {
            violations: vec![],
            stats: SearchStats::default(),
            stopped: StopReason::Exhausted,
        };
        assert!(out.is_clean());
        assert!(out.first().is_none());
    }
}
