//! A shared, scoped worker pool for independent searches.
//!
//! One CrystalBall checking round contains several *independent* searches:
//! the main consequence-prediction run, the known-path replays, and the
//! filter-safety re-check. Historically each ran back-to-back, and the
//! parallel engine additionally spawned fresh threads for every BFS level.
//! [`WorkerPool`] fixes both: it is a long-lived pool of worker threads
//! that any number of concurrent searches submit closures to — the
//! parallel engine's check/expand phases, a `Predictor`'s replay batch,
//! and a sibling checker shard's safety re-check all draw from the same
//! workers, so one busy search soaks up capacity another is not using.
//!
//! # Scoped execution
//!
//! Tasks may borrow from the submitting stack frame ([`PoolScope::spawn`]
//! accepts non-`'static` closures). Safety rests on one invariant:
//! [`WorkerPool::scope`] does not return — not even by unwinding — until
//! every task spawned inside it has finished running. A drop guard
//! performs the wait, so a panic in the scope body still blocks until the
//! outstanding borrows are dead.
//!
//! # Deadlock freedom
//!
//! A scope's owner *helps*: while waiting it pops and runs queued tasks
//! of its *own* batch (never another scope's — running foreign work
//! would block the owner on a stranger's task after its own batch had
//! drained). Helping makes nested scopes safe: a pool task that opens
//! its own scope (the parallel engine running *inside* a prediction
//! round) executes its subtasks itself if no worker is free, so
//! progress never depends on pool capacity — a pool may even have zero
//! worker threads, in which case every scope degrades to sequential
//! execution on its owner.
//!
//! The queue's FIFO order is a *contract*, not an implementation detail:
//! the parallel engine's sharded merge spawns tasks that block on the
//! output of earlier-spawned tasks, and relies on every spawn-order
//! predecessor having been popped (hence running or finished) before such
//! a task starts. Replacing the queue with a LIFO or randomized discipline
//! would deadlock it.

use std::any::Any;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Task = Box<dyn FnOnce() + Send + 'static>;

struct QueuedJob {
    batch: Arc<BatchState>,
    run: Task,
}

/// Completion tracking for one scope's tasks.
struct BatchState {
    remaining: AtomicUsize,
    /// First panic payload raised by a task of this batch, re-raised at
    /// the scope so the original assertion message survives.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

struct PoolShared {
    queue: Mutex<PoolQueue>,
    cv: Condvar,
}

struct PoolQueue {
    jobs: VecDeque<QueuedJob>,
    shutdown: bool,
}

/// Joins the worker threads when the last [`WorkerPool`] handle drops.
struct Guard {
    shared: Arc<PoolShared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Drop for Guard {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("pool queue poisoned");
            q.shutdown = true;
        }
        self.shared.cv.notify_all();
        for h in self
            .handles
            .lock()
            .expect("pool handles poisoned")
            .drain(..)
        {
            let _ = h.join();
        }
    }
}

/// A cloneable handle to a fixed set of worker threads. All clones share
/// the same workers; the threads exit when the last handle drops.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    guard: Arc<Guard>,
    threads: usize,
}

impl Clone for WorkerPool {
    fn clone(&self) -> Self {
        WorkerPool {
            shared: self.shared.clone(),
            guard: self.guard.clone(),
            threads: self.threads,
        }
    }
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool of `threads` workers. Zero is allowed: scopes then
    /// execute every task on their owning thread (sequential fallback).
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("cb-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        let guard = Arc::new(Guard {
            shared: shared.clone(),
            handles: Mutex::new(handles),
        });
        WorkerPool {
            shared,
            guard,
            threads,
        }
    }

    /// Number of worker threads (excluding scope owners, which also run
    /// tasks while they wait).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f`, which may spawn borrowing tasks via the provided
    /// [`PoolScope`], then helps execute queued work until every spawned
    /// task has completed. Panics from tasks are re-raised here after the
    /// wait. Returns `f`'s result.
    pub fn scope<'env, R>(&self, f: impl FnOnce(&PoolScope<'_, 'env>) -> R) -> R {
        let batch = Arc::new(BatchState {
            remaining: AtomicUsize::new(0),
            panic: Mutex::new(None),
        });
        let scope = PoolScope {
            shared: &self.shared,
            batch: batch.clone(),
            _env: std::marker::PhantomData,
        };
        // The guard waits even if `f` unwinds, so no spawned task can
        // outlive the borrows it captured.
        let wait = WaitGuard {
            shared: &self.shared,
            batch: &batch,
        };
        let out = f(&scope);
        drop(wait);
        if let Some(payload) = batch.panic.lock().expect("panic slot poisoned").take() {
            resume_unwind(payload);
        }
        out
    }
}

/// Spawn handle passed to the closure of [`WorkerPool::scope`].
pub struct PoolScope<'p, 'env> {
    shared: &'p Arc<PoolShared>,
    batch: Arc<BatchState>,
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'env> PoolScope<'_, 'env> {
    /// Queues `task` for execution by a pool worker (or by any thread
    /// helping while it waits). The task may borrow anything that outlives
    /// the enclosing [`WorkerPool::scope`] call.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'env) {
        let boxed: Box<dyn FnOnce() + Send + 'env> = Box::new(task);
        // SAFETY: the scope's WaitGuard blocks `WorkerPool::scope` (even
        // during unwinding) until `batch.remaining` reaches zero, which
        // only happens after this task has run to completion — so every
        // borrow with lifetime 'env captured by the task stays alive for
        // as long as the task can execute.
        let run: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(boxed)
        };
        self.batch.remaining.fetch_add(1, Ordering::AcqRel);
        {
            let mut q = self.shared.queue.lock().expect("pool queue poisoned");
            q.jobs.push_back(QueuedJob {
                batch: self.batch.clone(),
                run,
            });
        }
        self.shared.cv.notify_all();
    }

    /// Pops the oldest still-queued task *of this scope's batch* and runs
    /// it on the calling thread; returns false when none of the batch's
    /// tasks are queued (they are running elsewhere or already done).
    ///
    /// This is the streamed merge's starvation valve: a coordinator that
    /// has nothing ready to merge executes its own pending expansion
    /// instead of sleeping, so — as with the scope-exit work-helping —
    /// progress never depends on pool capacity, including a zero-thread
    /// pool or a pool whose every worker is itself a blocked coordinator.
    /// Tasks were spawned in submission order and the pool queue is FIFO,
    /// so the popped task is the lowest-indexed remaining one — exactly
    /// the task an order-preserving consumer is waiting for.
    pub fn help_one(&self) -> bool {
        let job = {
            let mut q = self.shared.queue.lock().expect("pool queue poisoned");
            let mine = q
                .jobs
                .iter()
                .position(|j| Arc::ptr_eq(&j.batch, &self.batch));
            match mine {
                Some(ix) => q.jobs.remove(ix).expect("indexed job"),
                None => return false,
            }
        };
        run_job(self.shared, job);
        true
    }
}

struct WaitGuard<'a> {
    shared: &'a PoolShared,
    batch: &'a Arc<BatchState>,
}

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        help_until_done(self.shared, self.batch);
    }
}

fn run_job(shared: &PoolShared, job: QueuedJob) {
    if let Err(payload) = catch_unwind(AssertUnwindSafe(job.run)) {
        let mut slot = job.batch.panic.lock().expect("panic slot poisoned");
        slot.get_or_insert(payload);
    }
    if job.batch.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        // Last task of the batch: wake its (possibly sleeping) owner.
        // Taking the lock orders this notify after the owner's re-check.
        drop(shared.queue.lock().expect("pool queue poisoned"));
        shared.cv.notify_all();
    }
}

/// Runs queued jobs *of this batch* until none remain outstanding.
///
/// Only the batch's own tasks are helped: an owner must not end up
/// executing a stranger's long task after its own work has drained
/// (priority inversion). Liveness holds anyway — tasks of a batch can
/// only be queued before its owner starts waiting (scopes are not
/// handed to tasks), so once the queue holds none of them, the rest are
/// in flight on other threads and the last completion wakes the owner.
fn help_until_done(shared: &PoolShared, batch: &Arc<BatchState>) {
    loop {
        if batch.remaining.load(Ordering::Acquire) == 0 {
            return;
        }
        let job = {
            let mut q = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if batch.remaining.load(Ordering::Acquire) == 0 {
                    return;
                }
                let mine = q.jobs.iter().position(|j| Arc::ptr_eq(&j.batch, batch));
                if let Some(ix) = mine {
                    break q.jobs.remove(ix).expect("indexed job");
                }
                q = shared.cv.wait(q).expect("pool queue poisoned");
            }
        };
        run_job(shared, job);
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(j) = q.jobs.pop_front() {
                    break j;
                }
                if q.shutdown {
                    return;
                }
                q = shared.cv.wait(q).expect("pool queue poisoned");
            }
        };
        run_job(shared, job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_borrowing_tasks_to_completion() {
        let pool = WorkerPool::new(3);
        let mut slots = vec![0u64; 64];
        pool.scope(|s| {
            for (i, slot) in slots.iter_mut().enumerate() {
                s.spawn(move || *slot = i as u64 + 1);
            }
        });
        assert!(slots.iter().enumerate().all(|(i, &v)| v == i as u64 + 1));
    }

    #[test]
    fn scope_returns_body_result() {
        let pool = WorkerPool::new(1);
        let hits = AtomicU64::new(0);
        let r = pool.scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
            42
        });
        assert_eq!(r, 42);
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_scopes_make_progress_beyond_pool_capacity() {
        // One worker; the outer scope fills it, and every task opens its
        // own inner scope — only owner work-helping lets this finish.
        let pool = WorkerPool::new(1);
        let total = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..4 {
                let pool = pool.clone();
                let total = &total;
                s.spawn(move || {
                    pool.scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|| {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn concurrent_scopes_from_many_threads() {
        let pool = WorkerPool::new(2);
        let total = AtomicU64::new(0);
        std::thread::scope(|ts| {
            for _ in 0..4 {
                let pool = pool.clone();
                let total = &total;
                ts.spawn(move || {
                    for _ in 0..16 {
                        pool.scope(|s| {
                            for _ in 0..4 {
                                s.spawn(|| {
                                    total.fetch_add(1, Ordering::Relaxed);
                                });
                            }
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 16 * 4);
    }

    #[test]
    fn task_panic_propagates_after_all_tasks_finish() {
        let pool = WorkerPool::new(2);
        let finished = Arc::new(AtomicU64::new(0));
        let fin = finished.clone();
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("boom"));
                for _ in 0..8 {
                    let fin = fin.clone();
                    s.spawn(move || {
                        fin.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        let payload = res.expect_err("panic re-raised at the scope");
        assert_eq!(
            payload.downcast_ref::<&str>(),
            Some(&"boom"),
            "the original panic payload survives the pool"
        );
        assert_eq!(
            finished.load(Ordering::Relaxed),
            8,
            "sibling tasks still ran to completion"
        );
        // The pool survives a task panic.
        let ok = AtomicU64::new(0);
        pool.scope(|s| {
            s.spawn(|| {
                ok.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(ok.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn zero_thread_pool_runs_everything_on_the_owner() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 0);
        let owner = std::thread::current().id();
        let sink = Mutex::new(Vec::new());
        pool.scope(|s| {
            for _ in 0..4 {
                let sink = &sink;
                s.spawn(move || {
                    sink.lock().unwrap().push(std::thread::current().id());
                });
            }
        });
        let ran_on = sink.into_inner().unwrap();
        assert_eq!(ran_on.len(), 4);
        assert!(
            ran_on.iter().all(|&id| id == owner),
            "no workers: the scope owner executed every task"
        );
    }

    #[test]
    fn owner_does_not_execute_foreign_batches() {
        // A scope owner waiting on its own (empty) batch must return
        // immediately even while another scope's long task is queued.
        let pool = WorkerPool::new(1);
        let gate = Arc::new(AtomicU64::new(0));
        let g = gate.clone();
        let p2 = pool.clone();
        let slow = std::thread::spawn(move || {
            p2.scope(|s| {
                for _ in 0..8 {
                    let g = g.clone();
                    s.spawn(move || {
                        while g.load(Ordering::Relaxed) == 0 {
                            std::thread::yield_now();
                        }
                    });
                }
            });
        });
        // Give the slow scope time to enqueue its blocked tasks.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let t0 = std::time::Instant::now();
        pool.scope(|_| {}); // empty batch: nothing to help with
        assert!(
            t0.elapsed() < std::time::Duration::from_millis(500),
            "empty scope returned without running foreign work"
        );
        gate.store(1, Ordering::Relaxed);
        slow.join().unwrap();
    }

    #[test]
    fn help_one_runs_own_queued_tasks_in_fifo_order() {
        // Zero workers: nothing runs unless the owner helps.
        let pool = WorkerPool::new(0);
        let order = Mutex::new(Vec::new());
        pool.scope(|s| {
            for i in 0..4 {
                let order = &order;
                s.spawn(move || order.lock().unwrap().push(i));
            }
            assert!(s.help_one());
            assert_eq!(*order.lock().unwrap(), vec![0]);
            assert!(s.help_one());
            assert_eq!(*order.lock().unwrap(), vec![0, 1]);
            // The remaining two run at scope exit via the wait guard.
        });
        assert_eq!(order.into_inner().unwrap(), vec![0, 1, 2, 3]);
        // With nothing queued, help_one declines rather than blocking.
        pool.scope(|s| assert!(!s.help_one()));
    }

    #[test]
    fn clones_share_workers_and_drop_cleanly() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.threads(), 2);
        let clone = pool.clone();
        drop(pool);
        let hits = AtomicU64::new(0);
        clone.scope(|s| {
            s.spawn(|| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }
}
