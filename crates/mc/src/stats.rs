//! Search statistics and memory accounting.
//!
//! Besides the usual visited/enqueued counters, the accounting here backs
//! two figures of the paper's evaluation: Fig. 15 (memory consumed by the
//! search as a function of depth — "less than 1MB [at depth 7–8] and can
//! thus easily fit in the L2 cache") and Fig. 16 (memory per visited state,
//! converging to ≈150 bytes).

use std::time::Duration;

/// Counters and memory estimates collected during one search run.
#[derive(Clone, Debug, Default)]
pub struct SearchStats {
    /// States dequeued and expanded (the paper's "visited states").
    pub states_visited: usize,
    /// States pushed onto the frontier (deduplicated).
    pub states_enqueued: usize,
    /// Successor states discarded because their hash was already seen.
    pub duplicates_hit: usize,
    /// Node-expansions skipped by consequence prediction's `localExplored`
    /// test (0 for exhaustive search); the pruning-factor ablation reads
    /// this.
    pub local_prunes: usize,
    /// Events suppressed by installed [`crate::EventFilter`]s.
    pub filtered_events: usize,
    /// Deepest level fully or partially expanded.
    pub max_depth: usize,
    /// Visited states per depth level (index = depth).
    pub per_depth: Vec<usize>,
    /// Wall-clock time spent searching.
    pub elapsed: Duration,
    /// Parallel engine only: coordinator time spent *performing* the
    /// canonical dedup/merge on received edge batches. Now that merging
    /// overlaps expansion, busy time must be split from wait time — a
    /// single "merge phase" timer would double-count the coordinator's
    /// idle waits (for the next canonical batch) as merge cost.
    pub merge_busy: Duration,
    /// Parallel engine only: coordinator time spent blocked waiting for
    /// the next in-canonical-order batch (reorder-buffer stalls). Time
    /// the coordinator spends *helping* expand is attributed to neither
    /// counter — it is expansion work, not merge cost.
    pub merge_wait: Duration,
    /// Parallel engine only: number of merge shards the level-3 phase ran
    /// with (0 when the unsharded/fused path was taken). Sharding splits
    /// the canonical merge by explored-key range so shards dedup
    /// concurrently; a deterministic recombine restores sequential order.
    pub merge_shards: usize,
    /// Parallel engine only: per-shard busy time (index = shard). The sum
    /// equals `merge_busy`; the spread shows how evenly `shard_of` split
    /// the key space — the scaling bench reports it as merge utilization.
    pub merge_shard_busy: Vec<Duration>,
    /// Parallel engine only: time spent in the sequential k-way recombine
    /// that merges per-shard admitted edges back into canonical enqueue
    /// order. This is the sharded design's residual serial section.
    pub merge_recombine: Duration,
    /// Resident bytes of the explored set at search end (open-addressing
    /// segments plus any spill-tier block index and bloom filter).
    pub explored_resident_bytes: usize,
    /// Bytes of explored entries currently parked in the on-disk spill
    /// run (0 unless `explored_spill_bytes` was set and exceeded).
    pub explored_spilled_bytes: u64,
    /// Number of spill-to-disk compactions the explored set performed.
    pub explored_spills: usize,
    /// Bytes of the search tree: parent-pointer arena entries plus the
    /// explored/localExplored hash entries (what Fig. 15 plots).
    pub tree_bytes: usize,
    /// Peak bytes held by frontier states (full clones awaiting expansion).
    pub peak_frontier_bytes: usize,
    /// Number of property violations discovered.
    pub violations_found: usize,
}

impl SearchStats {
    /// Bytes per visited state (Fig. 16's metric); 0 when nothing was
    /// visited.
    pub fn bytes_per_state(&self) -> usize {
        self.tree_bytes
            .checked_div(self.states_visited)
            .unwrap_or(0)
    }

    /// Visited states per second of wall time.
    pub fn states_per_sec(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.states_visited as f64 / s
        }
    }

    /// Renders the run's counters as a compact JSON object via the shared
    /// [`cb_obs::json::Writer`] (durations in seconds, derived metrics
    /// included) — the machine-readable face the scaling benches report.
    pub fn to_json(&self) -> String {
        use cb_obs::json::{self, Style, Writer};
        let per_depth: Vec<String> = self.per_depth.iter().map(|n| n.to_string()).collect();
        let mut w = Writer::object(Style::Compact);
        w.field_usize("states_visited", self.states_visited)
            .field_usize("states_enqueued", self.states_enqueued)
            .field_usize("duplicates_hit", self.duplicates_hit)
            .field_usize("local_prunes", self.local_prunes)
            .field_usize("filtered_events", self.filtered_events)
            .field_usize("max_depth", self.max_depth)
            .field_raw("per_depth", &json::array(&per_depth))
            .field_f64("elapsed_s", self.elapsed.as_secs_f64(), 6)
            .field_f64("merge_busy_s", self.merge_busy.as_secs_f64(), 6)
            .field_f64("merge_wait_s", self.merge_wait.as_secs_f64(), 6)
            .field_usize("merge_shards", self.merge_shards)
            .field_f64("merge_recombine_s", self.merge_recombine.as_secs_f64(), 6)
            .field_usize("explored_resident_bytes", self.explored_resident_bytes)
            .field_u64("explored_spilled_bytes", self.explored_spilled_bytes)
            .field_usize("explored_spills", self.explored_spills)
            .field_usize("tree_bytes", self.tree_bytes)
            .field_usize("peak_frontier_bytes", self.peak_frontier_bytes)
            .field_usize("violations_found", self.violations_found)
            .field_usize("bytes_per_state", self.bytes_per_state())
            .field_f64("states_per_sec", self.states_per_sec(), 1);
        w.finish()
    }

    /// Records a visit at `depth`, growing the per-depth table as needed.
    pub(crate) fn record_visit(&mut self, depth: usize) {
        self.states_visited += 1;
        if depth >= self.per_depth.len() {
            self.per_depth.resize(depth + 1, 0);
        }
        self.per_depth[depth] += 1;
        self.max_depth = self.max_depth.max(depth);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_depth_tracking() {
        let mut s = SearchStats::default();
        s.record_visit(0);
        s.record_visit(2);
        s.record_visit(2);
        assert_eq!(s.per_depth, vec![1, 0, 2]);
        assert_eq!(s.max_depth, 2);
        assert_eq!(s.states_visited, 3);
    }

    #[test]
    fn derived_metrics() {
        let mut s = SearchStats::default();
        assert_eq!(s.bytes_per_state(), 0);
        assert_eq!(s.states_per_sec(), 0.0);
        s.states_visited = 10;
        s.tree_bytes = 1500;
        s.elapsed = Duration::from_millis(500);
        assert_eq!(s.bytes_per_state(), 150);
        assert!((s.states_per_sec() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn json_parses_and_carries_derived_metrics() {
        let mut s = SearchStats::default();
        s.record_visit(0);
        s.record_visit(2);
        s.tree_bytes = 300;
        s.elapsed = Duration::from_millis(100);
        let json = s.to_json();
        assert!(json.contains("\"per_depth\":[1,0,1]"), "{json}");
        assert!(json.contains("\"bytes_per_state\":150"), "{json}");
        let v = cb_obs::json::parse(&json).expect("SearchStats JSON parses");
        assert_eq!(v.get("states_visited").and_then(|v| v.as_u64()), Some(2));
    }
}
