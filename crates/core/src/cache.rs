//! Cross-round prediction memoization: the `PredictionCache`.
//!
//! At deployment scale most neighborhood snapshots the checker sees are
//! near-duplicates: gathers fire on a period, overlay neighborhoods are
//! stable for long stretches, and a fleet of similar deployments keeps
//! re-submitting states the checker has already searched. The paper pays
//! full consequence-prediction cost for each (§2.3); the per-node
//! `last_snapshot_hash` dedup in the controller only catches *identical
//! consecutive* snapshots of one node. This module generalizes that into
//! a shared, bounded, canonically keyed memo of **whole round outcomes**:
//!
//! * the key is a deterministic FNV combination of everything a round's
//!   result depends on — the [`cb_model::GlobalState::state_hash`] of the
//!   gathered neighborhood, the submitting node and steering mode, a
//!   fingerprint of the search/steering configuration and protocol
//!   *instance* (two co-deployed members may run the same protocol type
//!   with different bug knobs), and a fingerprint of the predictor's
//!   remembered error paths (replay results depend on them);
//! * the value is the full round outcome (violation + canonical
//!   shallowest path, replay results, the derived safety-checked
//!   filter), type-erased so one cache instance can serve a whole
//!   mixed-protocol [`crate::CheckerHost`];
//! * entries are LRU-bounded, and hit/miss/insert/eviction counters are
//!   kept **per client** (per controller), so a fleet member's share of a
//!   host-wide cache is attributable in its own stats.
//!
//! Because the key covers every input of the round, a hit returns a
//! result byte-identical to what a cold run would compute — the
//! determinism contract of the sharded checker survives memoization, and
//! the `CB_PRED_CACHE` CI leg proves it. The same property is what makes
//! **optimistic execution** safe: a round run speculatively on a partial
//! gather (see `Predictor::speculate_round` in `crate::service`) just
//! pre-warms the cache under the partial state's key; if the completed
//! snapshot hashes to the speculated base the real round hits (the
//! speculation *commits*), otherwise it misses and re-runs cold (the
//! speculation is *cancelled* — counted, never applied to filters).

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default bound on cached round outcomes (a shared host-wide cache; one
/// entry holds one violation path plus a couple of filters, so this is
/// small change next to the search's explored sets).
pub const DEFAULT_PREDICTION_CACHE_CAPACITY: usize = 1024;

/// Reads the `CB_PRED_CACHE` toggle: unset / `1` / `on` / `true` enable
/// memoization, `0` / `off` / `false` disable it (the CI determinism
/// matrix runs both legs).
pub fn prediction_cache_env_default() -> bool {
    match std::env::var("CB_PRED_CACHE") {
        Ok(v) => !matches!(v.trim(), "0" | "off" | "false"),
        Err(_) => true,
    }
}

/// Per-client memoization and speculation counters (atomics; shards of
/// one pool bump the same set concurrently).
#[derive(Debug, Default)]
pub struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    spec_started: AtomicU64,
    spec_committed: AtomicU64,
    spec_cancelled: AtomicU64,
}

// Scrapeable mirrors of the cache counters: the `cb-obs` metrics plane
// aggregates per-process (all clients of the host-wide cache sum into
// one family), which is what a hit-rate health rule wants.
static M_HITS: cb_obs::metrics::Counter =
    cb_obs::metrics::Counter::new("cb_cache_hits_total", "prediction-cache lookups served");
static M_MISSES: cb_obs::metrics::Counter =
    cb_obs::metrics::Counter::new("cb_cache_misses_total", "prediction-cache lookups missed");
static M_SPEC_STARTED: cb_obs::metrics::Counter = cb_obs::metrics::Counter::new(
    "cb_cache_spec_started_total",
    "speculative (partial-gather) rounds started",
);
static M_SPEC_COMMITS: cb_obs::metrics::Counter = cb_obs::metrics::Counter::new(
    "cb_cache_spec_commits_total",
    "speculative rounds whose pre-warmed entry the real round hit",
);
static M_SPEC_CANCELS: cb_obs::metrics::Counter = cb_obs::metrics::Counter::new(
    "cb_cache_spec_cancels_total",
    "speculative rounds discarded (completed snapshot diverged)",
);

/// Registers the cache families without recording, so scrapes taken
/// before the first lookup (or on a run whose speculation never fires)
/// still expose them at 0. Called from checker construction.
pub(crate) fn touch_metric_families() {
    M_HITS.touch();
    M_MISSES.touch();
    M_SPEC_STARTED.touch();
    M_SPEC_COMMITS.touch();
    M_SPEC_CANCELS.touch();
}

impl CacheCounters {
    // The bump methods double as the cache's trace-event and metrics
    // hooks: every backend (sync controller, sharded pool, fleet host)
    // funnels through them, so one instant + one family bump covers the
    // whole surface. `cb_obs` is outcome-invisible — disabled recorders
    // make these pure counter increments.
    pub(crate) fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        cb_obs::instant("cache.hit", "cache");
        M_HITS.inc();
    }
    pub(crate) fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        cb_obs::instant("cache.miss", "cache");
        M_MISSES.inc();
    }
    pub(crate) fn spec_started(&self) {
        self.spec_started.fetch_add(1, Ordering::Relaxed);
        cb_obs::instant("cache.spec_started", "cache");
        M_SPEC_STARTED.inc();
    }
    pub(crate) fn spec_committed(&self) {
        self.spec_committed.fetch_add(1, Ordering::Relaxed);
        cb_obs::instant("cache.spec_commit", "cache");
        M_SPEC_COMMITS.inc();
    }
    pub(crate) fn spec_cancelled(&self) {
        self.spec_cancelled.fetch_add(1, Ordering::Relaxed);
        cb_obs::instant("cache.spec_cancel", "cache");
        M_SPEC_CANCELS.inc();
    }

    /// A point-in-time copy of the counters. Each field is read with one
    /// relaxed load, so a snapshot taken *while shards are bumping* may
    /// mix before/after values of different counters — fine for the
    /// full-JSON stats surfaces, not for invariant checks. See
    /// [`CacheCounters::quiesced_snapshot`].
    pub fn snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            spec_started: self.spec_started.load(Ordering::Relaxed),
            spec_committed: self.spec_committed.load(Ordering::Relaxed),
            spec_cancelled: self.spec_cancelled.load(Ordering::Relaxed),
        }
    }

    /// A *consistent* copy of the counters, for callers that have
    /// quiesced the cache's clients (e.g. after `WireChecker::drain` /
    /// pool shutdown): reads the whole set repeatedly until two
    /// consecutive reads agree, so the result is a single point-in-time
    /// view rather than a mix of per-field instants. At rest this
    /// converges on the first iteration; under residual concurrent
    /// bumping it falls back to the last (racy) read after a bounded
    /// number of attempts rather than spinning forever.
    pub fn quiesced_snapshot(&self) -> CacheStats {
        let mut prev = self.snapshot();
        for _ in 0..64 {
            let next = self.snapshot();
            if next == prev {
                return next;
            }
            prev = next;
        }
        prev
    }
}

/// Snapshot of one client's [`CacheCounters`] — what
/// [`crate::Controller::checker_cache_stats`] returns and what the fleet
/// and live stats surfaces serialize.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Rounds answered from the cache (byte-identical to a cold run).
    pub hits: u64,
    /// Rounds that ran the full search.
    pub misses: u64,
    /// Outcomes inserted (cold completions plus speculative pre-warms).
    pub inserts: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Speculative rounds launched on partial gathers.
    pub spec_started: u64,
    /// Speculations whose base matched the completed snapshot (the real
    /// round hit the pre-warmed entry).
    pub spec_committed: u64,
    /// Speculations whose base diverged: the work was discarded and the
    /// round re-ran cold. Never applied to filters.
    pub spec_cancelled: u64,
}

impl CacheStats {
    /// Hit fraction over all lookups (0.0 with no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Compact JSON via the shared [`cb_obs::json::Writer`] (the one
    /// escaping-correct emitter every stats surface renders through).
    pub fn to_json(&self) -> String {
        let mut w = cb_obs::json::Writer::object(cb_obs::json::Style::Compact);
        w.field_u64("hits", self.hits)
            .field_u64("misses", self.misses)
            .field_u64("inserts", self.inserts)
            .field_u64("evictions", self.evictions)
            .field_u64("spec_started", self.spec_started)
            .field_u64("spec_committed", self.spec_committed)
            .field_u64("spec_cancelled", self.spec_cancelled)
            .field_f64("hit_rate", self.hit_rate(), 4);
        w.finish()
    }
}

struct Entry {
    value: Arc<dyn Any + Send + Sync>,
    last_used: u64,
}

struct Inner {
    map: HashMap<u64, Entry>,
    /// Monotonic LRU clock (bumped on every touch).
    tick: u64,
}

/// The shared, bounded, type-erased memo of round outcomes. One instance
/// lives in every [`crate::CheckerHost`] (all pools — hence all fleet
/// members — on that host share it); a synchronous-backend controller
/// owns a private one.
pub struct PredictionCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl std::fmt::Debug for PredictionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("prediction cache poisoned");
        f.debug_struct("PredictionCache")
            .field("entries", &inner.map.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl Default for PredictionCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_PREDICTION_CACHE_CAPACITY)
    }
}

impl PredictionCache {
    /// A cache bounded to `capacity` entries (at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        PredictionCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("prediction cache poisoned")
            .map
            .len()
    }

    /// True when no outcome is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks one outcome up, bumping the client's hit/miss counters and
    /// the entry's recency. The type parameter is the caller's concrete
    /// round-outcome type; a key collision across types cannot happen
    /// because the protocol-instance fingerprint is part of every key.
    pub(crate) fn lookup<T: Send + Sync + 'static>(
        &self,
        key: u64,
        counters: &CacheCounters,
    ) -> Option<Arc<T>> {
        let mut inner = self.inner.lock().expect("prediction cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        let hit = inner.map.get_mut(&key).and_then(|e| {
            e.last_used = tick;
            e.value.clone().downcast::<T>().ok()
        });
        drop(inner);
        match hit {
            Some(v) => {
                counters.hit();
                Some(v)
            }
            None => {
                counters.miss();
                None
            }
        }
    }

    /// True when `key` is already cached (no counter movement — used to
    /// skip redundant speculative runs).
    pub(crate) fn contains(&self, key: u64) -> bool {
        self.inner
            .lock()
            .expect("prediction cache poisoned")
            .map
            .contains_key(&key)
    }

    /// Inserts one outcome, evicting the least-recently-used entry when
    /// over capacity. Racing inserts of the same key are benign: the key
    /// determines the value, so last-writer-wins stores identical data.
    pub(crate) fn insert<T: Send + Sync + 'static>(
        &self,
        key: u64,
        value: Arc<T>,
        counters: &CacheCounters,
    ) {
        let mut inner = self.inner.lock().expect("prediction cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(
            key,
            Entry {
                value,
                last_used: tick,
            },
        );
        counters.inserts.fetch_add(1, Ordering::Relaxed);
        while inner.map.len() > self.capacity {
            // O(n) min-scan: capacity is small and eviction rare next to
            // the searches a single miss costs.
            let oldest = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("non-empty over capacity");
            inner.map.remove(&oldest);
            counters.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_insert_and_counters() {
        let cache = PredictionCache::with_capacity(4);
        let c = CacheCounters::default();
        assert!(cache.lookup::<String>(7, &c).is_none());
        cache.insert(7, Arc::new("outcome".to_string()), &c);
        let got = cache.lookup::<String>(7, &c).expect("cached");
        assert_eq!(*got, "outcome");
        let s = c.snapshot();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lru_evicts_oldest() {
        let cache = PredictionCache::with_capacity(2);
        let c = CacheCounters::default();
        cache.insert(1, Arc::new(1u32), &c);
        cache.insert(2, Arc::new(2u32), &c);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.lookup::<u32>(1, &c).is_some());
        cache.insert(3, Arc::new(3u32), &c);
        assert!(cache.contains(1));
        assert!(!cache.contains(2));
        assert!(cache.contains(3));
        assert_eq!(c.snapshot().evictions, 1);
    }

    #[test]
    fn quiesced_snapshot_is_stable_at_rest() {
        let cache = PredictionCache::with_capacity(4);
        let c = CacheCounters::default();
        // Drive some movement, with concurrency while it lasts.
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = &cache;
                let c = &c;
                s.spawn(move || {
                    for i in 0..50 {
                        let key = t * 1000 + i;
                        let _ = cache.lookup::<u64>(key, c);
                        cache.insert(key, Arc::new(key), c);
                        let _ = cache.lookup::<u64>(key, c);
                    }
                });
            }
        });
        // All clients joined: the counters are at rest, so repeated
        // quiesced snapshots must agree exactly — with each other and
        // with the plain racy read.
        let first = c.quiesced_snapshot();
        for _ in 0..10 {
            assert_eq!(c.quiesced_snapshot(), first);
            assert_eq!(c.snapshot(), first);
        }
        assert_eq!(first.hits + first.misses, 4 * 50 * 2);
        assert_eq!(first.inserts, 4 * 50);
    }

    #[test]
    fn cache_stats_json_is_valid() {
        let c = CacheCounters::default();
        c.hit();
        c.miss();
        let json = c.snapshot().to_json();
        let v = cb_obs::json::parse(&json).expect("valid JSON");
        assert_eq!(v.get("hits").and_then(cb_obs::json::Value::as_u64), Some(1));
        assert_eq!(
            v.get("hit_rate").and_then(cb_obs::json::Value::as_f64),
            Some(0.5)
        );
    }

    #[test]
    fn env_default_parses() {
        // Only the unset default is asserted (env mutation races tests).
        if std::env::var("CB_PRED_CACHE").is_err() {
            assert!(prediction_cache_env_default());
        }
    }
}
