//! # crystalball — the CrystalBall controller
//!
//! The controller of Fig. 7, tying the pieces together: it consumes
//! consistent neighborhood snapshots from the checkpoint manager, runs
//! consequence prediction over them, and — depending on the mode — either
//! reports the predicted inconsistencies (**deep online debugging**) or
//! installs event filters that steer execution away from them
//! (**execution steering**), with the **immediate safety check** as the
//! last line of defense (§3.3).
//!
//! The [`Controller`] implements `cb_runtime::Hook`, so plugging CrystalBall
//! into a simulation is one constructor call:
//!
//! ```
//! use cb_model::{NodeId, PropertySet};
//! use cb_protocols::randtree::{self, RandTree, RandTreeBugs};
//! use cb_runtime::{SimConfig, Simulation};
//! use crystalball::{Controller, ControllerConfig, Mode};
//!
//! let proto = RandTree::new(2, vec![NodeId(0)], RandTreeBugs::as_shipped());
//! let controller = Controller::new(
//!     proto.clone(),
//!     randtree::properties::all(),
//!     ControllerConfig { mode: Mode::ExecutionSteering, ..ControllerConfig::default() },
//! );
//! let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
//! let mut sim = Simulation::new(
//!     proto,
//!     &nodes,
//!     randtree::properties::all(),
//!     controller,
//!     SimConfig::default(),
//! );
//! sim.run_for(cb_model::SimDuration::from_secs(1));
//! ```

pub mod cache;
pub mod controller;
pub mod service;

pub use cache::{prediction_cache_env_default, CacheStats, PredictionCache};
pub use controller::{Controller, ControllerConfig, ControllerStats, Mode, PredictionReport};
pub use service::{CheckerHost, CheckerMode, WireChecker, WireRound};

pub use cb_mc::WorkerPool;
