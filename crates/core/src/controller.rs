//! The CrystalBall controller: prediction, steering, and the immediate
//! safety check.
//!
//! The checking half of the controller (replay, consequence prediction,
//! filter derivation, the filter safety check) lives in
//! `crate::service::Predictor`; this module owns the *live* half —
//! installed filters, the immediate safety check, statistics, and the
//! `Hook` wiring — and decides where prediction rounds run: inline
//! ([`CheckerMode::Synchronous`]) or on the background sharded
//! `crate::service::CheckerPool` ([`CheckerMode::Background`] /
//! [`CheckerMode::Sharded`]), in which case the simulated system keeps
//! executing while the checker works, submissions are diff-shipped
//! instead of cloned, and the checker latency is measured rather than
//! modeled.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use cb_mc::{Engine, EventFilter, SearchConfig, WorkerPool};
use cb_model::{
    apply_event, Decode, Event, EventKey, GlobalState, InFlight, NodeId, NodeSlot, Payload,
    PropertySet, Protocol, SimDuration, SimTime, TraceStep, Violation,
};
use cb_runtime::{Decision, Hook};
use cb_snapshot::{DeltaStats, Snapshot};

use crate::service::{CheckerMode, CheckerPool, PredictionJob, Predictor, RoundResult};

/// Operating mode (§3): report-only or actively steering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// "The controller only outputs the information about the property
    /// violation."
    DeepOnlineDebugging,
    /// "The controller examines the report from the model checker, prepares
    /// an event filter that can avoid the erroneous condition, checks the
    /// filter's impact, and installs it into the runtime if it is deemed to
    /// be safe."
    ExecutionSteering,
}

/// Controller tuning.
#[derive(Clone, Debug)]
pub struct ControllerConfig {
    /// Debugging vs steering.
    pub mode: Mode,
    /// Budget and event options for each consequence-prediction run.
    pub search: SearchConfig,
    /// Which engine runs prediction: [`Engine::Sequential`] or the
    /// parallel work-stealing engine ([`Engine::Parallel`]) — both produce
    /// identical predictions; parallel produces them sooner.
    pub engine: Engine,
    /// Where rounds execute: inline (blocking, deterministic) or on the
    /// background checker service.
    pub checker: CheckerMode,
    /// Modeled wall-clock runtime of the checker, used only in
    /// [`CheckerMode::Synchronous`]: a filter derived from a snapshot at
    /// time T activates at T + `mc_latency` ("After running the model
    /// checker for 6 seconds, C successfully predicts...", §5.4.2). The
    /// immediate safety check covers the gap. In
    /// [`CheckerMode::Background`] the latency is whatever the checker
    /// thread actually takes (recorded in
    /// [`ControllerStats::measured_mc_latencies`]).
    pub mc_latency: SimDuration,
    /// Enable the immediate safety check (speculative handler execution).
    pub immediate_safety_check: bool,
    /// Re-run consequence prediction with the candidate filter installed
    /// before trusting it (§3.3 "Ensuring Safety of Event Filter Actions").
    pub check_filter_safety: bool,
    /// Budget for the filter-safety re-check (smaller than the main run).
    pub safety_check_states: usize,
    /// Replay previously discovered error paths at the start of every run
    /// (§3.3 "Rechecking Previously Discovered Violations").
    pub replay_known_paths: bool,
    /// Steering blocks also reset the offending connection (§3.3).
    pub reset_connection_on_block: bool,
    /// Cap on remembered error paths.
    pub max_known_paths: usize,
    /// Apply completed background rounds opportunistically from the hook
    /// entry points (the live-deployment default). `false` defers every
    /// application to explicit [`Controller::poll_predictions`] /
    /// [`Controller::drain_predictions`] calls, which an external
    /// scheduler places at deterministic simulated times — the fleet
    /// harness's determinism contract: with hook polling, *when* a round
    /// finishes (wall clock) decides *when* its filter activates
    /// (simulated time), so the same seed could trace differently across
    /// host speeds and worker counts.
    pub poll_in_hooks: bool,
    /// Memoize completed round outcomes in the (host-shared)
    /// [`crate::PredictionCache`], answering repeated neighborhood states
    /// without re-searching. A hit reproduces the cold round's result
    /// byte for byte, so this trades only CPU, never outcomes. Defaults
    /// to the `CB_PRED_CACHE` environment toggle (on unless set to
    /// `0`/`off`/`false` — the CI determinism matrix runs both legs).
    pub prediction_cache: bool,
    /// Entry bound for a *privately* spawned prediction cache (synchronous
    /// backend, or a background pool given no shared `CheckerHost`).
    /// Shared hosts size their own cache at construction.
    pub prediction_cache_capacity: usize,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            mode: Mode::ExecutionSteering,
            search: SearchConfig {
                max_states: Some(20_000),
                max_depth: Some(8),
                ..SearchConfig::default()
            },
            engine: Engine::Sequential,
            checker: CheckerMode::Synchronous,
            mc_latency: SimDuration::from_secs(6),
            immediate_safety_check: true,
            check_filter_safety: true,
            safety_check_states: 5_000,
            replay_known_paths: true,
            reset_connection_on_block: true,
            max_known_paths: 16,
            poll_in_hooks: true,
            prediction_cache: crate::cache::prediction_cache_env_default(),
            prediction_cache_capacity: crate::cache::DEFAULT_PREDICTION_CACHE_CAPACITY,
        }
    }
}

/// One predicted inconsistency, as logged in deep-online-debugging mode.
#[derive(Clone, Debug)]
pub struct PredictionReport {
    /// When the snapshot that produced the prediction completed.
    pub at: SimTime,
    /// The node whose controller made the prediction.
    pub node: NodeId,
    /// The predicted violation.
    pub violation: Violation,
    /// Human-readable event path (the paper's scenario walk-through form).
    pub scenario: String,
    /// Search depth at which the violation was predicted.
    pub depth: usize,
    /// States the prediction run visited.
    pub states_visited: usize,
}

/// Controller counters — the numbers reported in §5.4.
#[derive(Clone, Debug, Default)]
pub struct ControllerStats {
    /// Consequence-prediction runs executed.
    pub mc_runs: u64,
    /// Runs that predicted at least one future inconsistency ("execution
    /// steering detects a future inconsistency 480 times").
    pub predictions: u64,
    /// Predictions turned into installed filters ("415 times modifying the
    /// behavior of the system").
    pub filters_installed: u64,
    /// Predictions where no safe corrective action existed ("65 times
    /// concluding that changing the behavior is unhelpful").
    pub steering_unhelpful: u64,
    /// Times an active filter actually blocked an event.
    pub filter_hits: u64,
    /// Times the immediate safety check vetoed a handler ("the immediate
    /// safety check fallback engages 160 times").
    pub isc_vetoes: u64,
    /// Known-path replays that re-discovered the violation (fast path).
    pub replays_rediscovered: u64,
    /// Violations that still appeared in the live state (false negatives;
    /// 0 in §5.4.1, 2%/5% in Fig. 14).
    pub uncaught_violations: u64,
    /// Measured wall-clock duration of every completed checking round
    /// (replay + prediction + safety check). In synchronous mode this is
    /// the blocking time; in background mode, the actual prediction
    /// latency the paper models as `mc_latency`.
    pub measured_mc_latencies: Vec<Duration>,
}

impl ControllerStats {
    /// Mean measured checking-round latency, if any round completed.
    pub fn avg_mc_latency(&self) -> Option<Duration> {
        if self.measured_mc_latencies.is_empty() {
            return None;
        }
        let total: Duration = self.measured_mc_latencies.iter().sum();
        Some(total / self.measured_mc_latencies.len() as u32)
    }
}

struct InstalledFilter {
    owner: NodeId,
    active_from: SimTime,
    filter: EventFilter,
}

enum Backend<P: Protocol> {
    /// Rounds run inline on the caller's thread.
    Sync(Box<Predictor<P>>),
    /// Rounds run on the sharded background checker pool.
    Pool(CheckerPool<P>),
}

/// The per-deployment CrystalBall controller. One instance serves every
/// node of the simulation, keeping per-node filter ownership — equivalent
/// to the paper's one-controller-per-node arrangement, because a filter
/// only ever inspects events addressed to its owner.
pub struct Controller<P: Protocol> {
    protocol: P,
    props: PropertySet<P>,
    config: Arc<ControllerConfig>,
    filters: Vec<InstalledFilter>,
    last_snapshot_hash: HashMap<NodeId, u64>,
    backend: Backend<P>,
    /// Prediction log (what deep online debugging prints).
    pub reports: Vec<PredictionReport>,
    /// Counters.
    pub stats: ControllerStats,
}

impl<P: Protocol> Controller<P> {
    /// Creates a controller checking `props` over `protocol`. With
    /// [`CheckerMode::Background`] or [`CheckerMode::Sharded`] this spawns
    /// the checker shard threads. Every independent search the controller
    /// runs — the main prediction, known-path replays, filter-safety
    /// re-checks, across every shard — shares one [`WorkerPool`].
    pub fn new(protocol: P, props: PropertySet<P>, config: ControllerConfig) -> Self {
        // The scope owner always participates, so a parallel engine with
        // w workers needs w-1 pool threads; keep at least one so replays
        // overlap the main search even under the sequential engine.
        let engine_workers = match &config.engine {
            Engine::Parallel(p) => p.workers.max(1),
            _ => 1,
        };
        let pool = WorkerPool::new(engine_workers.max(2) - 1);
        Self::with_runtime(protocol, props, config, pool, None)
    }

    /// Creates a controller on externally owned checking resources: every
    /// search runs on `pool`, and background rounds (if the mode has any)
    /// execute on the shared [`crate::service::CheckerHost`] lanes instead of
    /// pool-private threads. This is the fleet entry point — co-deployed
    /// controllers over *different* protocols hand in the same pool and
    /// host, so one deployment's idle checking capacity serves another's
    /// burst.
    pub fn with_runtime(
        protocol: P,
        props: PropertySet<P>,
        config: ControllerConfig,
        pool: WorkerPool,
        host: Option<Arc<crate::service::CheckerHost>>,
    ) -> Self {
        let config = Arc::new(config);
        let backend = match config.checker.shard_count() {
            0 => Backend::Sync(Box::new(Predictor::new(
                protocol.clone(),
                props.clone(),
                config.clone(),
                pool,
                // The synchronous backend is single-client by
                // construction; its cache is private (host sharing is a
                // background-pool topology).
                Arc::new(crate::cache::PredictionCache::with_capacity(
                    config.prediction_cache_capacity,
                )),
                Arc::new(crate::cache::CacheCounters::default()),
            ))),
            shards => Backend::Pool(CheckerPool::spawn(
                &protocol, &props, &config, &pool, shards, host,
            )),
        };
        Controller {
            protocol,
            props,
            config,
            filters: Vec::new(),
            last_snapshot_hash: HashMap::new(),
            backend,
            reports: Vec::new(),
            stats: ControllerStats::default(),
        }
    }

    /// The active mode.
    pub fn mode(&self) -> Mode {
        self.config.mode
    }

    /// Number of currently installed filters (active or pending).
    pub fn installed_filters(&self) -> usize {
        self.filters.len()
    }

    /// Checking rounds submitted to the background pool and not yet
    /// applied (always 0 in synchronous mode).
    pub fn pending_predictions(&self) -> u64 {
        match &self.backend {
            Backend::Sync(_) => 0,
            Backend::Pool(pool) => pool.pending(),
        }
    }

    /// Submission-cost counters of the background pool's diff-shipping
    /// channels: how many bytes full-clone submission would have moved
    /// (`raw_bytes`) vs what the [`cb_snapshot::StateDelta`] stream
    /// actually shipped (`shipped_bytes`). `None` in synchronous mode.
    pub fn checker_wire_stats(&self) -> Option<DeltaStats> {
        match &self.backend {
            Backend::Sync(_) => None,
            Backend::Pool(pool) => Some(pool.wire_stats()),
        }
    }

    /// This controller's prediction-cache and speculation counters — its
    /// share of the (possibly host-wide) [`crate::PredictionCache`]
    /// traffic, reported next to [`Controller::checker_wire_stats`].
    /// Wall-clock-free but **not** deterministic across runs when the
    /// cache is shared: which co-deployed member warms a common entry
    /// first is a race (the outcomes are identical either way).
    pub fn checker_cache_stats(&self) -> crate::cache::CacheStats {
        match &self.backend {
            Backend::Sync(predictor) => predictor.cache_stats(),
            Backend::Pool(pool) => pool.cache_stats(),
        }
    }

    /// Launches one **optimistic** checking round for `node` on a partial
    /// snapshot state (stragglers still outstanding): the outcome
    /// pre-warms the prediction cache under the partial state's key but
    /// produces no report and installs no filter. When the completed
    /// snapshot arrives, [`Controller::run_round`] reconciles — if it
    /// hashes to the speculated base the round commits as a cache hit;
    /// otherwise the speculation is cancelled (counted in
    /// [`Controller::checker_cache_stats`]) and the round runs cold.
    /// No-op when memoization is off.
    pub fn speculate_round(&mut self, now: SimTime, node: NodeId, start: &GlobalState<P>) {
        let steering = self.config.mode == Mode::ExecutionSteering;
        let job = PredictionJob {
            at: now,
            node,
            steering,
            tag: 0,
        };
        match &mut self.backend {
            Backend::Sync(predictor) => predictor.speculate_round(job, start),
            Backend::Pool(pool) => pool.submit_speculative(now, node, start, steering, 0),
        }
    }

    /// The currently installed per-node filters (active or pending),
    /// exposed for equivalence tests and benches.
    pub fn active_filters(&self) -> Vec<(NodeId, EventFilter)> {
        self.filters
            .iter()
            .map(|f| (f.owner, f.filter.clone()))
            .collect()
    }

    /// Decodes a gathered snapshot into a checker-ready global state.
    /// Nodes whose checkpoints failed to decode are dropped (they become
    /// the dummy node, §4).
    pub fn snapshot_to_state(snapshot: &Snapshot) -> GlobalState<P> {
        let slots = snapshot.states.iter().filter_map(|(&n, bytes)| {
            NodeSlot::<P::State>::from_bytes(bytes)
                .ok()
                .map(|slot| (n, slot))
        });
        GlobalState::from_slots(slots)
    }

    /// Runs one full CrystalBall round for `node` on a decoded snapshot.
    ///
    /// In synchronous mode this blocks through replay, consequence
    /// prediction, filter preparation, safety check and installation, and
    /// returns the predicted violation, if any. In background mode it
    /// *submits* the round to the checker service and returns `None`
    /// immediately; the result is applied when it completes (see
    /// [`Controller::poll_predictions`]).
    pub fn run_round(
        &mut self,
        now: SimTime,
        node: NodeId,
        start: &GlobalState<P>,
    ) -> Option<Violation> {
        let steering = self.config.mode == Mode::ExecutionSteering;
        let job = PredictionJob {
            at: now,
            node,
            steering,
            tag: 0,
        };
        match &mut self.backend {
            Backend::Sync(predictor) => {
                let result = predictor.run_round(job, start);
                // Filters activate once the (modeled) checker run
                // completes; until then the ISC covers.
                let activation = now + self.config.mc_latency;
                self.apply_result(result, now, activation)
            }
            Backend::Pool(pool) => {
                // Diff-shipped: no full-state clone crosses the channel.
                pool.submit(now, node, start, steering, 0);
                None
            }
        }
    }

    /// Applies every checking round the background pool has completed;
    /// replay filters activate at `now`, predicted-violation filters at
    /// `now` too (their latency has already elapsed for real). Returns the
    /// number of rounds applied. No-op in synchronous mode.
    pub fn poll_predictions(&mut self, now: SimTime) -> usize {
        let mut results = match &mut self.backend {
            Backend::Sync(_) => return 0,
            Backend::Pool(pool) => pool.try_results(),
        };
        // Lanes complete out of order; apply in submission order so the
        // fold into reports/filters is reproducible.
        results.sort_by_key(|r| r.seq);
        let n = results.len();
        for result in results {
            self.apply_result(result, now, now);
        }
        n
    }

    /// Blocks until every submitted round has completed (or `timeout`
    /// expires) and applies the results as of simulated time `now`.
    /// Returns the number of rounds applied. No-op in synchronous mode.
    pub fn drain_predictions(&mut self, now: SimTime, timeout: Duration) -> usize {
        let mut results = match &mut self.backend {
            Backend::Sync(_) => return 0,
            Backend::Pool(pool) => pool.wait_results(timeout),
        };
        // A full drain holds every round submitted since the last one, so
        // sorting by submission seq makes the application order — and
        // with it the whole downstream trace — independent of lane and
        // worker scheduling.
        results.sort_by_key(|r| r.seq);
        let n = results.len();
        for result in results {
            self.apply_result(result, now, now);
        }
        n
    }

    /// Folds one completed round into the live state: expire the node's
    /// previous filters ("CrystalBall removes the filters from the runtime
    /// after every model checking run", §3.3), reinstate replay filters,
    /// log the prediction, and install the corrective filter.
    fn apply_result(
        &mut self,
        result: RoundResult<P>,
        now: SimTime,
        activation: SimTime,
    ) -> Option<Violation> {
        self.stats.mc_runs += 1;
        self.stats.measured_mc_latencies.push(result.wall);
        self.filters.retain(|f| f.owner != result.node);

        self.stats.replays_rediscovered += result.replays_rediscovered;
        for filter in result.replay_filters {
            // "If the problem reappears, CrystalBall immediately
            // reinstalls the appropriate filter."
            self.install(result.node, now, filter);
        }

        let found = result.found?;
        self.stats.predictions += 1;
        self.reports.push(PredictionReport {
            at: result.at,
            node: result.node,
            violation: found.violation.clone(),
            scenario: found.scenario(),
            depth: found.depth,
            states_visited: result.states_visited,
        });
        if result.steering {
            match result.filter {
                Some(filter) => {
                    self.install(result.node, activation, filter);
                    self.stats.filters_installed += 1;
                }
                None => {
                    // "65 times concluding that changing the behavior is
                    // unhelpful" (§5.4.1).
                    self.stats.steering_unhelpful += 1;
                }
            }
        }
        Some(found.violation)
    }

    fn install(&mut self, owner: NodeId, active_from: SimTime, filter: EventFilter) {
        if !self
            .filters
            .iter()
            .any(|f| f.owner == owner && f.filter == filter)
        {
            self.filters.push(InstalledFilter {
                owner,
                active_from,
                filter,
            });
        }
    }

    fn active_filter_decision(&mut self, now: SimTime, key: &EventKey) -> Decision {
        if self.config.mode != Mode::ExecutionSteering {
            return Decision::Allow;
        }
        for f in &self.filters {
            if f.active_from <= now && f.filter.matches(key) {
                self.stats.filter_hits += 1;
                return if f.filter.resets_connection() {
                    Decision::BlockAndReset
                } else {
                    Decision::Block
                };
            }
        }
        Decision::Allow
    }

    /// The immediate safety check (§3.3/§4): "speculatively runs the
    /// handler, checks the consistency properties in the resulting state,
    /// and prevents actual handler execution if the resulting state is
    /// inconsistent." The paper forks the process; we clone the state.
    fn isc_vetoes_delivery(&mut self, gs: &GlobalState<P>, item: &InFlight<P::Message>) -> bool {
        if !self.config.immediate_safety_check || self.config.mode != Mode::ExecutionSteering {
            return false;
        }
        let mut spec = gs.clone();
        spec.route_item(item.clone());
        let index = spec.inflight.len() - 1;
        apply_event(&self.protocol, &mut spec, &Event::Deliver { index });
        if self.props.check(&spec).is_some() {
            self.stats.isc_vetoes += 1;
            true
        } else {
            false
        }
    }

    fn isc_vetoes_action(&mut self, gs: &GlobalState<P>, node: NodeId, action: &P::Action) -> bool {
        if !self.config.immediate_safety_check || self.config.mode != Mode::ExecutionSteering {
            return false;
        }
        let mut spec = gs.clone();
        apply_event(
            &self.protocol,
            &mut spec,
            &Event::Action {
                node,
                action: action.clone(),
            },
        );
        if self.props.check(&spec).is_some() {
            self.stats.isc_vetoes += 1;
            true
        } else {
            false
        }
    }
}

impl<P: Protocol> Controller<P> {
    /// Opportunistic application of completed background rounds from the
    /// hook entry points — disabled when an external scheduler owns the
    /// application points ([`ControllerConfig::poll_in_hooks`]).
    fn hook_poll(&mut self, now: SimTime) {
        if self.config.poll_in_hooks {
            self.poll_predictions(now);
        }
    }
}

impl<P: Protocol> Hook<P> for Controller<P> {
    fn filter_delivery(
        &mut self,
        now: SimTime,
        gs: &GlobalState<P>,
        item: &InFlight<P::Message>,
    ) -> Decision {
        // Completed background rounds activate before the next event runs.
        self.hook_poll(now);
        let key = match &item.payload {
            Payload::Msg(m) => EventKey::Message {
                kind: P::message_kind(m),
                src: item.src,
                dst: item.dst,
            },
            Payload::Error => EventKey::ErrorNotice {
                src: item.src,
                dst: item.dst,
            },
        };
        let decision = self.active_filter_decision(now, &key);
        if decision != Decision::Allow {
            return decision;
        }
        if self.isc_vetoes_delivery(gs, item) {
            return Decision::Block;
        }
        Decision::Allow
    }

    fn filter_action(
        &mut self,
        now: SimTime,
        gs: &GlobalState<P>,
        node: NodeId,
        action: &P::Action,
    ) -> Decision {
        self.hook_poll(now);
        let key = EventKey::Action {
            kind: P::action_kind(action),
            node,
        };
        let decision = self.active_filter_decision(now, &key);
        if decision != Decision::Allow {
            return decision;
        }
        if self.isc_vetoes_action(gs, node, action) {
            return Decision::Block;
        }
        Decision::Allow
    }

    fn after_step(&mut self, now: SimTime, gs: &GlobalState<P>, _step: &TraceStep) {
        self.hook_poll(now);
        // Count violations that slipped past prediction and the ISC — the
        // paper's false negatives.
        if self.props.check(gs).is_some() {
            self.stats.uncaught_violations += 1;
        }
    }

    fn on_snapshot(&mut self, now: SimTime, node: NodeId, snapshot: &Snapshot) {
        self.hook_poll(now);
        let start = Self::snapshot_to_state(snapshot);
        if start.node_count() == 0 {
            return;
        }
        // A snapshot identical to the previous round's would re-run the
        // same search to the same conclusion; keep the existing filters in
        // force and save the checker budget for fresh states.
        let h = start.state_hash();
        if self.last_snapshot_hash.get(&node) == Some(&h) {
            return;
        }
        self.last_snapshot_hash.insert(node, h);
        self.run_round(now, node, &start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_mc::ParallelConfig;
    use cb_model::ExploreOptions;
    use cb_protocols::randtree::{self, Action as RtAction, Msg as RtMsg, RandTree, RandTreeBugs};
    use cb_runtime::{NoHook, Scenario, SimConfig, Simulation};

    fn fig2_sim_config(seed: u64) -> SimConfig {
        SimConfig {
            seed,
            ..SimConfig::default()
        }
    }

    fn steering_config() -> ControllerConfig {
        ControllerConfig {
            search: SearchConfig {
                max_states: Some(30_000),
                max_depth: Some(7),
                explore: ExploreOptions::default(),
                ..SearchConfig::default()
            },
            mc_latency: SimDuration::from_millis(500),
            ..ControllerConfig::default()
        }
    }

    /// Builds the Fig. 2 pre-state (n1 root with child n9; n13 child of
    /// n9; n13 freshly reset) as a decoded snapshot global state.
    fn fig2_snapshot(bugs: RandTreeBugs) -> (RandTree, GlobalState<RandTree>) {
        let proto = RandTree::new(2, vec![NodeId(1)], bugs);
        let mut gs = GlobalState::init(&proto, [NodeId(1), NodeId(9), NodeId(13)]);
        for (node, action) in [
            (1u32, RtAction::Join { target: NodeId(1) }),
            (9, RtAction::Join { target: NodeId(1) }),
        ] {
            apply_event(
                &proto,
                &mut gs,
                &Event::Action {
                    node: NodeId(node),
                    action,
                },
            );
            while !gs.inflight.is_empty() {
                apply_event(&proto, &mut gs, &Event::Deliver { index: 0 });
            }
        }
        // Graft n13 under n9 (the paper's 13-step history compressed).
        gs.slot_mut(NodeId(9))
            .unwrap()
            .state
            .children
            .insert(NodeId(13));
        {
            let s13 = &mut gs.slot_mut(NodeId(13)).unwrap().state;
            s13.status = randtree::Status::Joined;
            s13.parent = Some(NodeId(9));
            s13.root = Some(NodeId(1));
            s13.recovery_scheduled = true;
        }
        (proto, gs)
    }

    #[test]
    fn consequence_prediction_predicts_fig2_from_live_state() {
        let (proto, gs) = fig2_snapshot(RandTreeBugs::only("R1"));
        let mut ctl = Controller::new(
            proto,
            randtree::properties::all(),
            ControllerConfig {
                mode: Mode::DeepOnlineDebugging,
                ..steering_config()
            },
        );
        let v = ctl.run_round(SimTime::ZERO, NodeId(1), &gs);
        let v = v.expect("Fig. 2 violation predicted");
        assert_eq!(v.property, "ChildrenSiblingsDisjoint");
        assert_eq!(ctl.stats.predictions, 1);
        assert_eq!(
            ctl.installed_filters(),
            0,
            "debugging mode installs nothing"
        );
        let report = &ctl.reports[0];
        assert!(
            report.scenario.contains("reset"),
            "path shows the reset:\n{}",
            report.scenario
        );
        assert!(report.depth >= 3, "nontrivial depth {}", report.depth);
        assert_eq!(
            ctl.stats.measured_mc_latencies.len(),
            1,
            "round latency measured"
        );
        assert!(ctl.stats.avg_mc_latency().is_some());
    }

    #[test]
    fn steering_mode_installs_a_safe_filter() {
        let (proto, gs) = fig2_snapshot(RandTreeBugs::only("R1"));
        let mut ctl = Controller::new(proto, randtree::properties::all(), steering_config());
        let v = ctl.run_round(SimTime::ZERO, NodeId(1), &gs);
        assert!(v.is_some());
        assert_eq!(
            ctl.stats.filters_installed, 1,
            "filter installed at the join receiver"
        );
        assert_eq!(ctl.installed_filters(), 1);
    }

    #[test]
    fn parallel_engine_predicts_the_same_violation() {
        let (proto, gs) = fig2_snapshot(RandTreeBugs::only("R1"));
        let seq = {
            let mut ctl = Controller::new(
                proto.clone(),
                randtree::properties::all(),
                steering_config(),
            );
            ctl.run_round(SimTime::ZERO, NodeId(1), &gs);
            ctl.reports.pop().expect("prediction")
        };
        let par = {
            let mut ctl = Controller::new(
                proto,
                randtree::properties::all(),
                ControllerConfig {
                    // Sharded merge plus the compacted, spill-budgeted
                    // explored set, driven through the controller plumbing:
                    // none of it may change what gets predicted.
                    engine: Engine::Parallel(ParallelConfig {
                        workers: 4,
                        merge_shards: 2,
                        compact_explored: true,
                        explored_spill_bytes: Some(1 << 12),
                    }),
                    ..steering_config()
                },
            );
            ctl.run_round(SimTime::ZERO, NodeId(1), &gs);
            ctl.reports.pop().expect("prediction")
        };
        assert_eq!(seq.violation, par.violation);
        assert_eq!(seq.scenario, par.scenario, "identical canonical path");
        assert_eq!(seq.depth, par.depth);
    }

    #[test]
    fn installed_filter_blocks_matching_delivery_after_activation() {
        let (proto, gs) = fig2_snapshot(RandTreeBugs::only("R1"));
        let mut ctl = Controller::new(
            proto.clone(),
            randtree::properties::all(),
            steering_config(),
        );
        ctl.run_round(SimTime::ZERO, NodeId(1), &gs);
        // Find what was installed; make a matching delivery.
        let f = ctl.filters.first().expect("installed");
        let (kind, src, dst) = match &f.filter {
            EventFilter::Message { kind, src, dst, .. } => (*kind, *src, *dst),
            other => panic!("expected message filter, got {other}"),
        };
        assert_eq!(dst, NodeId(1), "filter owned by the predicting node");
        let msg = match kind {
            "Join" => RtMsg::Join {
                joiner: src,
                forwarded_down: false,
            },
            other => panic!("unexpected kind {other}"),
        };
        let item = InFlight {
            src,
            dst,
            src_inc: gs.slot(src).map_or(0, |s| s.incarnation),
            dst_inc: gs.slot(dst).unwrap().incarnation,
            payload: Payload::Msg(msg),
        };
        // Before activation (mc_latency): allowed (ISC may still veto — use
        // a state where the delivery alone is harmless).
        let d0 = ctl.filter_delivery(SimTime::ZERO, &gs, &item);
        assert_eq!(d0, Decision::Allow, "not active yet");
        // After activation: blocked with connection reset.
        let d1 = ctl.filter_delivery(SimTime::ZERO + SimDuration::from_secs(2), &gs, &item);
        assert_eq!(d1, Decision::BlockAndReset);
        assert!(ctl.stats.filter_hits >= 1);
    }

    #[test]
    fn isc_vetoes_imminent_violation() {
        // n9 already has n13 as child; an UpdateSibling(n13) delivery to n9
        // violates immediately — the ISC must catch it even with no filter.
        let (proto, gs) = fig2_snapshot(RandTreeBugs::only("R1"));
        let mut ctl = Controller::new(
            proto,
            randtree::properties::all(),
            ControllerConfig {
                mc_latency: SimDuration::from_secs(3600),
                ..steering_config()
            },
        );
        let item = InFlight {
            src: NodeId(1),
            dst: NodeId(9),
            src_inc: 0,
            dst_inc: 0,
            payload: Payload::Msg(RtMsg::UpdateSibling {
                sibling: NodeId(13),
            }),
        };
        let d = ctl.filter_delivery(SimTime::ZERO, &gs, &item);
        assert_eq!(d, Decision::Block, "immediate safety check veto");
        assert_eq!(ctl.stats.isc_vetoes, 1);
    }

    #[test]
    fn replay_reinstalls_filter_quickly() {
        let (proto, gs) = fig2_snapshot(RandTreeBugs::only("R1"));
        let mut ctl = Controller::new(proto, randtree::properties::all(), steering_config());
        ctl.run_round(SimTime::ZERO, NodeId(1), &gs);
        assert_eq!(ctl.stats.filters_installed, 1);
        // Second round on the same snapshot: filters were cleared, replay
        // re-discovers the path and reinstalls without waiting for the
        // full search.
        ctl.run_round(SimTime(1), NodeId(1), &gs);
        assert!(ctl.stats.replays_rediscovered >= 1);
        assert!(ctl.installed_filters() >= 1);
    }

    #[test]
    fn fixed_protocol_yields_no_predictions() {
        let (proto, gs) = fig2_snapshot(RandTreeBugs::none());
        let mut ctl = Controller::new(proto, randtree::properties::all(), steering_config());
        let v = ctl.run_round(SimTime::ZERO, NodeId(1), &gs);
        assert!(
            v.is_none(),
            "no violation predicted for the fixed code: {v:?}"
        );
        assert_eq!(ctl.stats.predictions, 0);
        assert!(ctl.reports.is_empty());
    }

    /// The background service runs the same round the synchronous backend
    /// does: submit the Fig. 2 snapshot, wait for the result, and verify
    /// the same filter gets installed and actually blocks.
    #[test]
    fn background_checker_predicts_and_installs_asynchronously() {
        let (proto, gs) = fig2_snapshot(RandTreeBugs::only("R1"));
        let mut ctl = Controller::new(
            proto,
            randtree::properties::all(),
            ControllerConfig {
                checker: CheckerMode::Background,
                ..steering_config()
            },
        );
        // Submission never blocks and reports nothing yet.
        let v = ctl.run_round(SimTime::ZERO, NodeId(1), &gs);
        assert!(v.is_none(), "async submission returns immediately");
        assert_eq!(ctl.pending_predictions(), 1);
        // Wait for the round and apply it at t=1s.
        let applied = ctl.drain_predictions(
            SimTime::ZERO + SimDuration::from_secs(1),
            Duration::from_secs(60),
        );
        assert_eq!(applied, 1);
        assert_eq!(ctl.pending_predictions(), 0);
        assert_eq!(ctl.stats.predictions, 1);
        assert_eq!(ctl.stats.filters_installed, 1);
        assert_eq!(
            ctl.stats.measured_mc_latencies.len(),
            1,
            "latency measured, not modeled"
        );
        // The installed filter is active (its latency already elapsed).
        let f = ctl.filters.first().expect("installed");
        assert!(f.active_from <= SimTime::ZERO + SimDuration::from_secs(1));
    }

    /// One `CheckerHost` + one `WorkerPool` serving two controllers over
    /// *different* protocol types — the fleet topology. The RandTree
    /// controller must reach the same outcome it reaches on a private
    /// backend, and deferred polling must leave application to the
    /// explicit drain.
    #[test]
    fn shared_checker_host_serves_heterogeneous_controllers() {
        use crate::service::CheckerHost;
        use cb_model::testproto::{max_pings_property, Ping};

        let host = Arc::new(CheckerHost::new(2));
        let pool = WorkerPool::new(1);

        let (proto, gs) = fig2_snapshot(RandTreeBugs::only("R1"));
        let mut rt = Controller::with_runtime(
            proto,
            randtree::properties::all(),
            ControllerConfig {
                checker: CheckerMode::Sharded { shards: 2 },
                poll_in_hooks: false,
                ..steering_config()
            },
            pool.clone(),
            Some(host.clone()),
        );
        let ping = Ping {
            kick_target: NodeId(0),
            kick_enabled: true,
        };
        let ping_gs = GlobalState::init(&ping, (0..3).map(NodeId));
        let mut pg = Controller::with_runtime(
            ping,
            PropertySet::new().with(max_pings_property(u32::MAX)),
            ControllerConfig {
                checker: CheckerMode::Sharded { shards: 2 },
                poll_in_hooks: false,
                ..steering_config()
            },
            pool,
            Some(host.clone()),
        );

        // Interleaved submissions from both controllers onto the same
        // lanes.
        for i in 0..3u64 {
            rt.run_round(SimTime(i), NodeId(1), &gs);
            pg.run_round(SimTime(i), NodeId(i as u32 % 3), &ping_gs);
        }
        assert_eq!(rt.pending_predictions(), 3);
        // Deferred polling: nothing applies from hook entry points.
        let step = TraceStep::Stale;
        rt.after_step(SimTime(50), &gs, &step);
        assert_eq!(rt.stats.mc_runs, 0, "poll_in_hooks=false defers");

        let applied = rt.drain_predictions(SimTime(100), Duration::from_secs(120));
        assert_eq!(applied, 3);
        assert_eq!(
            pg.drain_predictions(SimTime(100), Duration::from_secs(120)),
            3
        );
        assert_eq!(rt.stats.predictions, 3, "Fig. 2 predicted each round");
        assert!(rt.stats.filters_installed >= 1);
        assert_eq!(rt.reports[0].violation.property, "ChildrenSiblingsDisjoint");
        assert_eq!(pg.stats.predictions, 0, "clean protocol stays clean");
        drop(rt);
        // The shared host survives a client controller dropping.
        pg.run_round(SimTime(200), NodeId(0), &ping_gs);
        assert_eq!(
            pg.drain_predictions(SimTime(200), Duration::from_secs(120)),
            1
        );
    }

    /// End-to-end: buggy RandTree under churn; steering avoids the
    /// inconsistencies a NoHook run enters.
    #[test]
    fn end_to_end_steering_reduces_violations() {
        let nodes: Vec<NodeId> = (0..6).map(NodeId).collect();
        let proto = RandTree::new(2, vec![NodeId(0)], RandTreeBugs::as_shipped());
        let scenario = || {
            Scenario::churn(
                &nodes,
                |_| RtAction::Join { target: NodeId(0) },
                SimDuration::from_secs(25),
                SimDuration::from_secs(240),
                42,
            )
        };
        // Baseline: no CrystalBall.
        let mut base = Simulation::new(
            proto.clone(),
            &nodes,
            randtree::properties::all(),
            NoHook,
            fig2_sim_config(42),
        );
        base.load_scenario(scenario());
        base.run_for(SimDuration::from_secs(260));
        let baseline_violations = base.stats.violating_states;
        assert!(baseline_violations > 0, "bugs manifest without CrystalBall");

        // Steering run: same seed, same scenario.
        let ctl = Controller::new(
            proto.clone(),
            randtree::properties::all(),
            ControllerConfig {
                mc_latency: SimDuration::from_secs(2),
                search: SearchConfig {
                    max_states: Some(8_000),
                    max_depth: Some(6),
                    ..SearchConfig::default()
                },
                ..ControllerConfig::default()
            },
        );
        let mut steered = Simulation::new(
            proto,
            &nodes,
            randtree::properties::all(),
            ctl,
            SimConfig {
                snapshots: Some(cb_runtime::SnapshotRuntime {
                    checkpoint_interval: SimDuration::from_secs(5),
                    gather_interval: SimDuration::from_secs(5),
                    ..Default::default()
                }),
                ..fig2_sim_config(42)
            },
        );
        steered.load_scenario(scenario());
        steered.run_for(SimDuration::from_secs(260));
        assert!(
            steered.stats.violating_states < baseline_violations,
            "steering reduces inconsistent states: {} -> {}",
            baseline_violations,
            steered.stats.violating_states
        );
        assert!(
            steered.hook.stats.isc_vetoes + steered.hook.stats.filter_hits > 0,
            "CrystalBall actually intervened: {:?}",
            steered.hook.stats
        );
    }
}
