//! The asynchronous checker service and the shared prediction round.
//!
//! "We run the model checker as a separate thread that communicates future
//! inconsistencies to the runtime. ... On a multi-core machine this
//! CPU-intensive process will likely be scheduled on a separate core" (§4).
//!
//! [`Predictor`] is one full CrystalBall checking round — known-path
//! replay, consequence prediction (on any `cb_mc::Engine`, including the
//! parallel work-stealing one), corrective-filter derivation, and the
//! filter safety check — packaged so the *same* code runs either inline on
//! the caller's thread (synchronous mode, deterministic, used by tests and
//! modeled-latency experiments) or on the [`CheckerService`] background
//! thread, where the live system keeps executing while prediction runs and
//! the checker latency is *measured* instead of modeled.
//!
//! The service is a thread plus two channels: snapshots in, round results
//! out. The controller drains results opportunistically from its hook
//! entry points, so no simulation step ever blocks on the checker.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use cb_mc::{
    replay_path, EventFilter, FilterSet, FoundViolation, PathStep, SearchConfig, Searcher,
};
use cb_model::{apply_event, EventKey, GlobalState, NodeId, PropertySet, Protocol, SimTime};

use crate::controller::ControllerConfig;

/// Where prediction rounds execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CheckerMode {
    /// Rounds run inline in [`crate::Controller::run_round`] and block the
    /// caller; filters activate after the *modeled* `mc_latency`.
    /// Deterministic — the right mode for tests and repeatable
    /// experiments.
    #[default]
    Synchronous,
    /// Rounds run on the background [`CheckerService`] thread; the live
    /// system keeps stepping, results are drained from the controller's
    /// hook entry points, and filters activate when their round actually
    /// completes — `mc_latency` becomes a measurement, not a model.
    Background,
}

/// The outcome of one checking round, ready for the controller to apply.
pub(crate) struct RoundResult<P: Protocol> {
    /// When the snapshot that fed the round completed (simulated time).
    pub at: SimTime,
    /// The node whose snapshot was checked.
    pub node: NodeId,
    /// Whether this round was asked to steer (vs debug-only).
    pub steering: bool,
    /// Known-path replays that re-discovered their violation.
    pub replays_rediscovered: u64,
    /// Filters reinstated by replay (active immediately on application).
    pub replay_filters: Vec<EventFilter>,
    /// The shallowest predicted violation, if any.
    pub found: Option<FoundViolation<P>>,
    /// States the prediction run visited.
    pub states_visited: usize,
    /// The derived, safety-checked corrective filter, if steering found
    /// one.
    pub filter: Option<EventFilter>,
    /// Measured wall-clock time of the whole round (replay + prediction +
    /// safety check) — the paper's "model checker runs for n seconds",
    /// observed rather than assumed.
    pub wall: Duration,
}

/// One CrystalBall checking round: the checker-side half of the
/// controller, holding the state that belongs to checking (the remembered
/// error paths) and none of the live-side state (installed filters, ISC).
pub(crate) struct Predictor<P: Protocol> {
    protocol: P,
    props: PropertySet<P>,
    config: ControllerConfig,
    known_paths: VecDeque<Vec<PathStep<P>>>,
}

impl<P: Protocol> Predictor<P> {
    pub(crate) fn new(protocol: P, props: PropertySet<P>, config: ControllerConfig) -> Self {
        Predictor {
            protocol,
            props,
            config,
            known_paths: VecDeque::new(),
        }
    }

    /// Runs one full round against a decoded snapshot state: replay,
    /// consequence prediction, filter preparation, safety check.
    pub(crate) fn run_round(
        &mut self,
        at: SimTime,
        node: NodeId,
        start: &GlobalState<P>,
        steering: bool,
    ) -> RoundResult<P> {
        let t0 = Instant::now();

        // Fast path: replay previously discovered error paths (§3.3/§4).
        // "If the problem reappears, CrystalBall immediately reinstalls
        // the appropriate filter."
        let mut replays_rediscovered = 0;
        let mut replay_filters = Vec::new();
        if self.config.replay_known_paths {
            let paths: Vec<_> = self.known_paths.iter().cloned().collect();
            for path in paths {
                let outcome = replay_path(&self.protocol, &self.props, start, &path, 256);
                if outcome.violates() {
                    replays_rediscovered += 1;
                    if steering {
                        if let Some(filter) = self.derive_filter(node, start, &path) {
                            replay_filters.push(filter);
                        }
                    }
                }
            }
        }

        // The main consequence-prediction run (Fig. 8), on whichever
        // engine the controller was configured with.
        let search = SearchConfig {
            prune_local: true,
            ..self.config.search.clone()
        };
        let outcome =
            Searcher::new(&self.protocol, &self.props, search).search(start, &self.config.engine);
        let found = outcome.first().cloned();

        let mut filter = None;
        if let Some(found) = &found {
            self.remember_path(found);
            if steering {
                filter = self
                    .derive_filter(node, start, &found.path)
                    .filter(|f| self.filter_is_safe(start, f, found.depth));
            }
        }

        RoundResult {
            at,
            node,
            steering,
            replays_rediscovered,
            replay_filters,
            found,
            states_visited: outcome.stats.states_visited,
            filter,
            wall: t0.elapsed(),
        }
    }

    fn remember_path(&mut self, found: &FoundViolation<P>) {
        self.known_paths.push_back(found.path.clone());
        while self.known_paths.len() > self.config.max_known_paths {
            self.known_paths.pop_front();
        }
    }

    /// Picks the corrective action: the earliest event on the predicted
    /// path that `node`'s own runtime can intercept ("Our current policy is
    /// to steer the execution as early as possible", §3.3).
    fn derive_filter(
        &self,
        node: NodeId,
        start: &GlobalState<P>,
        path: &[PathStep<P>],
    ) -> Option<EventFilter> {
        // Walk the path, tracking intermediate states so event keys resolve.
        // Paths remembered from earlier snapshots may not replay on this
        // one (message indices go stale); stop at the first event that no
        // longer resolves rather than applying it blindly.
        let mut state = start.clone();
        for step in path {
            let key = step.event.key(&state)?;
            match key {
                EventKey::Message { kind, src, dst } if dst == node => {
                    return Some(EventFilter::Message {
                        kind,
                        src,
                        dst,
                        reset_connection: self.config.reset_connection_on_block,
                    });
                }
                EventKey::Action { kind, node: n } if n == node => {
                    return Some(EventFilter::Handler { kind, node });
                }
                _ => {}
            }
            apply_event(&self.protocol, &mut state, &step.event);
        }
        None
    }

    /// §3.3 "Checking Safety of Event Filters": re-run consequence
    /// prediction with the filter applied. The filter is deemed safe when
    /// the steered execution reaches no violation within the budget, or
    /// none *sooner* than the unfiltered execution would — blocking an
    /// event must not hasten an inconsistency, but it need not fix futures
    /// that were already independently broken (e.g. a different node's
    /// reset tripping the same protocol bug along a parallel path).
    fn filter_is_safe(
        &self,
        start: &GlobalState<P>,
        filter: &EventFilter,
        unfiltered_depth: usize,
    ) -> bool {
        if !self.config.check_filter_safety {
            return true;
        }
        let cfg = SearchConfig {
            max_states: Some(self.config.safety_check_states),
            filters: FilterSet::from_iter([filter.clone()]),
            prune_local: true,
            ..self.config.search.clone()
        };
        let outcome =
            Searcher::new(&self.protocol, &self.props, cfg).search(start, &self.config.engine);
        match outcome.first() {
            None => true,
            Some(found) => found.depth >= unfiltered_depth,
        }
    }
}

struct Job<P: Protocol> {
    at: SimTime,
    node: NodeId,
    start: GlobalState<P>,
    steering: bool,
}

/// The background checker: a service thread owning a [`Predictor`],
/// consuming snapshot jobs and producing round results. Channels decouple
/// it completely from the live system — submission never blocks, and
/// results are polled.
pub(crate) struct CheckerService<P: Protocol> {
    jobs: mpsc::Sender<Job<P>>,
    results: mpsc::Receiver<RoundResult<P>>,
    handle: Option<thread::JoinHandle<()>>,
    shutdown: std::sync::Arc<std::sync::atomic::AtomicBool>,
    submitted: u64,
    drained: u64,
}

impl<P: Protocol> CheckerService<P> {
    /// Spawns the service thread around `predictor`.
    pub(crate) fn spawn(mut predictor: Predictor<P>) -> Self {
        use std::sync::atomic::{AtomicBool, Ordering};
        let (job_tx, job_rx) = mpsc::channel::<Job<P>>();
        let (res_tx, res_rx) = mpsc::channel::<RoundResult<P>>();
        let shutdown = std::sync::Arc::new(AtomicBool::new(false));
        let stop = shutdown.clone();
        let handle = thread::Builder::new()
            .name("crystalball-checker".into())
            .spawn(move || {
                while let Ok(job) = job_rx.recv() {
                    // A closed job channel still delivers its backlog;
                    // the flag lets Drop skip queued rounds instead of
                    // grinding through every buffered search.
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let result = predictor.run_round(job.at, job.node, &job.start, job.steering);
                    if res_tx.send(result).is_err() {
                        break; // controller dropped; stop checking
                    }
                }
            })
            .expect("spawn checker thread");
        CheckerService {
            jobs: job_tx,
            results: res_rx,
            handle: Some(handle),
            shutdown,
            submitted: 0,
            drained: 0,
        }
    }

    /// Queues one round. Never blocks.
    pub(crate) fn submit(
        &mut self,
        at: SimTime,
        node: NodeId,
        start: GlobalState<P>,
        steering: bool,
    ) {
        self.submitted += 1;
        let _ = self.jobs.send(Job {
            at,
            node,
            start,
            steering,
        });
    }

    /// Rounds submitted but not yet drained.
    pub(crate) fn pending(&self) -> u64 {
        self.submitted - self.drained
    }

    /// Takes every completed round without blocking.
    pub(crate) fn try_results(&mut self) -> Vec<RoundResult<P>> {
        let mut out = Vec::new();
        while let Ok(r) = self.results.try_recv() {
            self.drained += 1;
            out.push(r);
        }
        out
    }

    /// Blocks (up to `timeout`) until every submitted round has completed,
    /// returning all results drained along the way.
    pub(crate) fn wait_results(&mut self, timeout: Duration) -> Vec<RoundResult<P>> {
        let deadline = Instant::now() + timeout;
        let mut out = self.try_results();
        while self.pending() > 0 {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match self.results.recv_timeout(left) {
                Ok(r) => {
                    self.drained += 1;
                    out.push(r);
                }
                Err(_) => break,
            }
        }
        out
    }
}

impl<P: Protocol> Drop for CheckerService<P> {
    fn drop(&mut self) {
        // Tell the thread to abandon any backlog, then close the job
        // channel so `recv` wakes; join completes after at most one
        // in-flight round.
        self.shutdown
            .store(true, std::sync::atomic::Ordering::Relaxed);
        let (tx, _) = mpsc::channel();
        drop(std::mem::replace(&mut self.jobs, tx));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}
