//! The sharded checker service and the staged prediction round.
//!
//! "We run the model checker as a separate thread that communicates future
//! inconsistencies to the runtime. ... On a multi-core machine this
//! CPU-intensive process will likely be scheduled on a separate core" (§4).
//!
//! `Predictor` is one full CrystalBall checking round, split into its
//! three independent-search stages — known-path replays, the main
//! consequence-prediction run, and the filter-safety re-check — described
//! by a `PredictionJob`. The replays and the main search are independent
//! of each other, so they run *concurrently* on a shared
//! [`cb_mc::WorkerPool`]; the safety re-check (which needs the main
//! search's result) runs on the same pool afterwards. The identical code
//! runs either inline on the caller's thread (synchronous mode,
//! deterministic, used by tests and modeled-latency experiments) or inside
//! the `CheckerPool`.
//!
//! `CheckerPool` is the background service, sharded by node: rounds for
//! node *n* always execute on shard `n mod shards`, which keeps each
//! node's remembered error paths (`known_paths`) on the shard that will
//! replay them while letting snapshots from *different* nodes check in
//! parallel. One shard reproduces the old single-thread background
//! service ([`CheckerMode::Background`] is exactly that special case).
//! All shards draw their search parallelism from one shared worker pool,
//! so a shard running a big prediction borrows the workers an idle shard
//! is not using.
//!
//! Submission is **diff-shipped**: instead of cloning the full decoded
//! `GlobalState` into the job channel, the controller encodes it as a
//! [`cb_snapshot::StateDelta`] against the last state submitted *for the
//! same node* (per-node [`DeltaEncoder`]/[`DeltaDecoder`] lineages riding
//! the shard's FIFO job channel — per-node, because consecutive
//! snapshots of one node's neighborhood are near-identical while
//! different nodes' neighborhoods are not), cutting submission cost for
//! large neighborhoods the same way §3.1's checkpoint diffs cut gather
//! bandwidth.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use cb_mc::{
    replay_path, EventFilter, FilterSet, FoundViolation, PathStep, ReplayOutcome, SearchConfig,
    Searcher, WorkerPool,
};
use cb_model::{apply_event, EventKey, GlobalState, NodeId, PropertySet, Protocol, SimTime};
use cb_snapshot::{DeltaDecoder, DeltaEncoder, DeltaStats, StateDelta};

use crate::controller::ControllerConfig;

/// Where prediction rounds execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CheckerMode {
    /// Rounds run inline in [`crate::Controller::run_round`] and block the
    /// caller; filters activate after the *modeled* `mc_latency`.
    /// Deterministic — the right mode for tests and repeatable
    /// experiments.
    #[default]
    Synchronous,
    /// Rounds run on a background `CheckerPool` with a single shard —
    /// the live system keeps stepping, results are drained from the
    /// controller's hook entry points, and filters activate when their
    /// round actually completes, so `mc_latency` becomes a measurement
    /// instead of a model.
    Background,
    /// Rounds run on a background `CheckerPool` with `shards` shard
    /// threads: rounds are sharded by node (per-node `known_paths`
    /// affinity), so snapshots from different nodes check concurrently.
    /// `Sharded { shards: 1 }` ≡ [`CheckerMode::Background`].
    ///
    /// Affinity granularity, by design: each shard remembers only the
    /// error paths its *own* nodes' rounds discovered, so a node's
    /// replay fast path (§3.3 "Rechecking Previously Discovered
    /// Violations") is always served by its shard, but a path learned
    /// from a node on another shard is not replayed — the main
    /// consequence-prediction run remains the discovery mechanism
    /// across shards. With 1 shard this coincides exactly with the
    /// global `known_paths` of the synchronous backend.
    Sharded {
        /// Number of checker shard threads (at least 1).
        shards: usize,
    },
}

impl CheckerMode {
    /// Shard-thread count this mode asks for (0 = no background service).
    pub(crate) fn shard_count(self) -> usize {
        match self {
            CheckerMode::Synchronous => 0,
            CheckerMode::Background => 1,
            CheckerMode::Sharded { shards } => shards.max(1),
        }
    }
}

/// Identity of one checking round: which snapshot is being checked and in
/// which controller mode — the job description every `Predictor` stage
/// receives.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PredictionJob {
    /// When the snapshot that feeds the round completed (simulated time).
    pub at: SimTime,
    /// The node whose snapshot is checked (also the shard key).
    pub node: NodeId,
    /// Whether the round should derive and safety-check filters.
    pub steering: bool,
}

/// The outcome of one checking round, ready for the controller to apply.
pub(crate) struct RoundResult<P: Protocol> {
    /// When the snapshot that fed the round completed (simulated time).
    pub at: SimTime,
    /// The node whose snapshot was checked.
    pub node: NodeId,
    /// Whether this round was asked to steer (vs debug-only).
    pub steering: bool,
    /// Known-path replays that re-discovered their violation.
    pub replays_rediscovered: u64,
    /// Filters reinstated by replay (active immediately on application).
    pub replay_filters: Vec<EventFilter>,
    /// The shallowest predicted violation, if any.
    pub found: Option<FoundViolation<P>>,
    /// States the prediction run visited.
    pub states_visited: usize,
    /// The derived, safety-checked corrective filter, if steering found
    /// one.
    pub filter: Option<EventFilter>,
    /// Measured wall-clock time of the whole round (replay + prediction +
    /// safety check) — the paper's "model checker runs for n seconds",
    /// observed rather than assumed.
    pub wall: Duration,
}

/// One CrystalBall checking round: the checker-side half of the
/// controller, holding the state that belongs to checking (the remembered
/// error paths) and none of the live-side state (installed filters, ISC).
pub(crate) struct Predictor<P: Protocol> {
    protocol: P,
    props: PropertySet<P>,
    /// Shared with the controller and every sibling shard — one
    /// allocation, not one clone per shard.
    config: Arc<ControllerConfig>,
    /// The main-run search config, derived from `config.search` once at
    /// construction instead of once per round.
    predict_cfg: SearchConfig,
    /// The safety-re-check config minus the candidate filter, likewise
    /// derived once.
    safety_base: SearchConfig,
    /// The shared pool all of this round's independent searches run on.
    pool: WorkerPool,
    known_paths: VecDeque<Vec<PathStep<P>>>,
}

impl<P: Protocol> Predictor<P> {
    pub(crate) fn new(
        protocol: P,
        props: PropertySet<P>,
        config: Arc<ControllerConfig>,
        pool: WorkerPool,
    ) -> Self {
        let predict_cfg = SearchConfig {
            prune_local: true,
            ..config.search.clone()
        };
        let safety_base = SearchConfig {
            max_states: Some(config.safety_check_states),
            prune_local: true,
            ..config.search.clone()
        };
        Predictor {
            protocol,
            props,
            config,
            predict_cfg,
            safety_base,
            pool,
            known_paths: VecDeque::new(),
        }
    }

    /// Runs one full round against a decoded snapshot state. Stage 1
    /// (known-path replays) and stage 2 (consequence prediction) are
    /// independent searches and execute concurrently on the shared pool;
    /// stage 3 (the filter-safety re-check) consumes stage 2's result and
    /// follows on the same pool.
    pub(crate) fn run_round(
        &mut self,
        job: PredictionJob,
        start: &GlobalState<P>,
    ) -> RoundResult<P> {
        let t0 = Instant::now();

        // Stages 1 ∥ 2. The replays land in per-path slots so their
        // results are consumed in deterministic (known_paths) order no
        // matter which worker ran them.
        let this: &Predictor<P> = self;
        let n_replays = if this.config.replay_known_paths {
            this.known_paths.len()
        } else {
            0
        };
        let replay_slots: Vec<Mutex<Option<ReplayOutcome>>> =
            (0..n_replays).map(|_| Mutex::new(None)).collect();
        let outcome = this.pool.scope(|scope| {
            for (slot, path) in replay_slots.iter().zip(this.known_paths.iter()) {
                scope.spawn(move || {
                    // Fast path: replay previously discovered error paths
                    // (§3.3/§4). "If the problem reappears, CrystalBall
                    // immediately reinstalls the appropriate filter."
                    let out = replay_path(&this.protocol, &this.props, start, path, 256);
                    *slot.lock().expect("replay slot poisoned") = Some(out);
                });
            }
            // The main consequence-prediction run (Fig. 8) on the calling
            // thread, which also lends a hand to queued pool work via the
            // engine's own scopes.
            this.stage_predict(start)
        });

        let mut replays_rediscovered = 0;
        let mut replay_filters = Vec::new();
        for (slot, path) in replay_slots.iter().zip(self.known_paths.iter()) {
            let out = slot
                .lock()
                .expect("replay slot poisoned")
                .take()
                .expect("replay ran");
            if out.violates() {
                replays_rediscovered += 1;
                if job.steering {
                    if let Some(filter) = self.derive_filter(job.node, start, path) {
                        replay_filters.push(filter);
                    }
                }
            }
        }

        let found = outcome.first().cloned();
        let mut filter = None;
        if let Some(found) = &found {
            self.remember_path(found);
            if job.steering {
                // Stage 3: the safety re-check, on the same shared pool.
                filter = self
                    .derive_filter(job.node, start, &found.path)
                    .filter(|f| self.filter_is_safe(start, f, found.depth));
            }
        }

        RoundResult {
            at: job.at,
            node: job.node,
            steering: job.steering,
            replays_rediscovered,
            replay_filters,
            found,
            states_visited: outcome.stats.states_visited,
            filter,
            wall: t0.elapsed(),
        }
    }

    /// Stage 2: the main consequence-prediction search (Fig. 8), on
    /// whichever engine the controller was configured with, drawing
    /// parallel workers from the shared pool.
    fn stage_predict(&self, start: &GlobalState<P>) -> cb_mc::SearchOutcome<P> {
        Searcher::new(&self.protocol, &self.props, self.predict_cfg.clone()).search_on(
            start,
            &self.config.engine,
            Some(&self.pool),
        )
    }

    fn remember_path(&mut self, found: &FoundViolation<P>) {
        self.known_paths.push_back(found.path.clone());
        while self.known_paths.len() > self.config.max_known_paths {
            self.known_paths.pop_front();
        }
    }

    /// Picks the corrective action: the earliest event on the predicted
    /// path that `node`'s own runtime can intercept ("Our current policy is
    /// to steer the execution as early as possible", §3.3).
    fn derive_filter(
        &self,
        node: NodeId,
        start: &GlobalState<P>,
        path: &[PathStep<P>],
    ) -> Option<EventFilter> {
        // Walk the path, tracking intermediate states so event keys resolve.
        // Paths remembered from earlier snapshots may not replay on this
        // one (message indices go stale); stop at the first event that no
        // longer resolves rather than applying it blindly.
        let mut state = start.clone();
        for step in path {
            let key = step.event.key(&state)?;
            match key {
                EventKey::Message { kind, src, dst } if dst == node => {
                    return Some(EventFilter::Message {
                        kind,
                        src,
                        dst,
                        reset_connection: self.config.reset_connection_on_block,
                    });
                }
                EventKey::Action { kind, node: n } if n == node => {
                    return Some(EventFilter::Handler { kind, node });
                }
                _ => {}
            }
            apply_event(&self.protocol, &mut state, &step.event);
        }
        None
    }

    /// Stage 3 — §3.3 "Checking Safety of Event Filters": re-run
    /// consequence prediction with the filter applied. The filter is deemed
    /// safe when the steered execution reaches no violation within the
    /// budget, or none *sooner* than the unfiltered execution would —
    /// blocking an event must not hasten an inconsistency, but it need not
    /// fix futures that were already independently broken (e.g. a
    /// different node's reset tripping the same protocol bug along a
    /// parallel path).
    fn filter_is_safe(
        &self,
        start: &GlobalState<P>,
        filter: &EventFilter,
        unfiltered_depth: usize,
    ) -> bool {
        if !self.config.check_filter_safety {
            return true;
        }
        let cfg = SearchConfig {
            filters: FilterSet::from_iter([filter.clone()]),
            ..self.safety_base.clone()
        };
        let outcome = Searcher::new(&self.protocol, &self.props, cfg).search_on(
            start,
            &self.config.engine,
            Some(&self.pool),
        );
        match outcome.first() {
            None => true,
            Some(found) => found.depth >= unfiltered_depth,
        }
    }
}

/// One diff-shipped round submission (the wire format of the per-shard
/// job channels — note: no `GlobalState`, no protocol types).
struct ShardJob {
    at: SimTime,
    node: NodeId,
    steering: bool,
    delta: StateDelta,
}

struct Shard {
    jobs: mpsc::Sender<ShardJob>,
    /// Submission-side halves of the shard's diff channels, one lineage
    /// per submitting node (decoder twins live on the shard thread).
    /// Per-node, not per-channel: consecutive snapshots of one node's
    /// neighborhood diff well; interleaved different-node neighborhoods
    /// would thrash a single shared base.
    encoders: HashMap<NodeId, DeltaEncoder>,
    handle: Option<thread::JoinHandle<()>>,
}

/// The background checker service: shard threads, each owning a
/// `Predictor` and the decoder half of a diff-shipping channel, plus one
/// shared results channel. Rounds are routed by `node mod shards`, so a
/// node's remembered error paths stay with the shard that replays them
/// while different nodes' snapshots check in parallel. Submission never
/// blocks; results are polled.
pub(crate) struct CheckerPool<P: Protocol> {
    shards: Vec<Shard>,
    results: mpsc::Receiver<RoundResult<P>>,
    shutdown: Arc<AtomicBool>,
    submitted: u64,
    drained: u64,
}

impl<P: Protocol> CheckerPool<P> {
    /// Spawns `shards` shard threads, each with its own `Predictor`
    /// sharing `pool` for search parallelism.
    pub(crate) fn spawn(
        protocol: &P,
        props: &PropertySet<P>,
        config: &Arc<ControllerConfig>,
        pool: &WorkerPool,
        shards: usize,
    ) -> Self {
        let shards_n = shards.max(1);
        let (res_tx, res_rx) = mpsc::channel::<RoundResult<P>>();
        let shutdown = Arc::new(AtomicBool::new(false));
        let shards = (0..shards_n)
            .map(|i| {
                let (job_tx, job_rx) = mpsc::channel::<ShardJob>();
                let mut predictor = Predictor::new(
                    protocol.clone(),
                    props.clone(),
                    config.clone(),
                    pool.clone(),
                );
                let res_tx = res_tx.clone();
                let stop = shutdown.clone();
                let handle = thread::Builder::new()
                    .name(format!("crystalball-checker-{i}"))
                    .spawn(move || {
                        let mut decoders: HashMap<NodeId, DeltaDecoder> = HashMap::new();
                        while let Ok(job) = job_rx.recv() {
                            // A closed job channel still delivers its
                            // backlog; the flag lets Drop skip queued
                            // rounds instead of grinding through every
                            // buffered search.
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            // The encoder twin rides the same FIFO
                            // channel (per-node order preserved), so the
                            // bases stay in lockstep; a decode failure
                            // here is a codec bug, not a runtime
                            // condition.
                            let start: GlobalState<P> = decoders
                                .entry(job.node)
                                .or_default()
                                .decode_state(&job.delta)
                                .expect("shard delta decodes against in-sync base");
                            let result = predictor.run_round(
                                PredictionJob {
                                    at: job.at,
                                    node: job.node,
                                    steering: job.steering,
                                },
                                &start,
                            );
                            if res_tx.send(result).is_err() {
                                break; // controller dropped; stop checking
                            }
                        }
                    })
                    .expect("spawn checker shard");
                Shard {
                    jobs: job_tx,
                    encoders: HashMap::new(),
                    handle: Some(handle),
                }
            })
            .collect();
        CheckerPool {
            shards,
            results: res_rx,
            shutdown,
            submitted: 0,
            drained: 0,
        }
    }

    /// Queues one round, diff-shipping the state against the last
    /// submission for the same node. Never blocks, never clones the
    /// decoded `GlobalState`.
    pub(crate) fn submit(
        &mut self,
        at: SimTime,
        node: NodeId,
        start: &GlobalState<P>,
        steering: bool,
    ) {
        let ix = (node.0 as usize) % self.shards.len();
        let shard = &mut self.shards[ix];
        let delta = shard.encoders.entry(node).or_default().encode_state(start);
        self.submitted += 1;
        let _ = shard.jobs.send(ShardJob {
            at,
            node,
            steering,
            delta,
        });
    }

    /// Rounds submitted but not yet drained.
    pub(crate) fn pending(&self) -> u64 {
        self.submitted - self.drained
    }

    /// Aggregated submission-cost counters over all shards (full-clone
    /// bytes vs diff-shipped bytes).
    pub(crate) fn wire_stats(&self) -> DeltaStats {
        let mut total = DeltaStats::default();
        for s in &self.shards {
            for enc in s.encoders.values() {
                total.merge(&enc.stats);
            }
        }
        total
    }

    /// Takes every completed round without blocking.
    pub(crate) fn try_results(&mut self) -> Vec<RoundResult<P>> {
        let mut out = Vec::new();
        while let Ok(r) = self.results.try_recv() {
            self.drained += 1;
            out.push(r);
        }
        out
    }

    /// Blocks (up to `timeout`) until every submitted round has completed,
    /// returning all results drained along the way.
    pub(crate) fn wait_results(&mut self, timeout: Duration) -> Vec<RoundResult<P>> {
        let deadline = Instant::now() + timeout;
        let mut out = self.try_results();
        while self.pending() > 0 {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match self.results.recv_timeout(left) {
                Ok(r) => {
                    self.drained += 1;
                    out.push(r);
                }
                Err(_) => break,
            }
        }
        out
    }
}

impl<P: Protocol> Drop for CheckerPool<P> {
    fn drop(&mut self) {
        // Tell the shards to abandon any backlog, then close the job
        // channels so `recv` wakes; each join completes after at most one
        // in-flight round.
        self.shutdown.store(true, Ordering::Relaxed);
        for shard in &mut self.shards {
            let (tx, _) = mpsc::channel();
            drop(std::mem::replace(&mut shard.jobs, tx));
        }
        for shard in &mut self.shards {
            if let Some(h) = shard.handle.take() {
                let _ = h.join();
            }
        }
    }
}
