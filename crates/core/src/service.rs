//! The sharded checker service and the staged prediction round.
//!
//! "We run the model checker as a separate thread that communicates future
//! inconsistencies to the runtime. ... On a multi-core machine this
//! CPU-intensive process will likely be scheduled on a separate core" (§4).
//!
//! `Predictor` is one full CrystalBall checking round, split into its
//! three independent-search stages — known-path replays, the main
//! consequence-prediction run, and the filter-safety re-check — described
//! by a `PredictionJob`. The replays and the main search are independent
//! of each other, so they run *concurrently* on a shared
//! [`cb_mc::WorkerPool`]; the safety re-check (which needs the main
//! search's result) runs on the same pool afterwards. The identical code
//! runs either inline on the caller's thread (synchronous mode,
//! deterministic, used by tests and modeled-latency experiments) or inside
//! the `CheckerPool`.
//!
//! `CheckerPool` is the background service, sharded by node: rounds for
//! node *n* always execute on shard `n mod shards`, which keeps each
//! node's remembered error paths (`known_paths`) on the shard that will
//! replay them while letting snapshots from *different* nodes check in
//! parallel. One shard reproduces the old single-thread background
//! service ([`CheckerMode::Background`] is exactly that special case).
//! All shards draw their search parallelism from one shared worker pool,
//! so a shard running a big prediction borrows the workers an idle shard
//! is not using.
//!
//! The threads themselves live in a [`CheckerHost`] — a protocol-agnostic
//! set of lanes that *multiple* controllers (over different protocol
//! types) can share, which is how the fleet harness multiplexes a whole
//! mixed-protocol deployment over one checker service. A pool given no
//! host spawns a private one, reproducing the pre-fleet
//! one-thread-per-shard topology.
//!
//! Submission is **diff-shipped**: instead of cloning the full decoded
//! `GlobalState` into the job channel, the controller encodes it as a
//! [`cb_snapshot::StateDelta`] against the last state submitted *for the
//! same node* (per-node [`DeltaEncoder`]/[`DeltaDecoder`] lineages riding
//! the shard's FIFO job channel — per-node, because consecutive
//! snapshots of one node's neighborhood are near-identical while
//! different nodes' neighborhoods are not), cutting submission cost for
//! large neighborhoods the same way §3.1's checkpoint diffs cut gather
//! bandwidth.
//!
//! Rounds are additionally **memoized**: every predictor on a host keys
//! completed round outcomes into the host's shared
//! [`crate::PredictionCache`], so a neighborhood state any member of the
//! deployment has already checked — under the same search configuration,
//! protocol instance, and remembered-path set — is answered without
//! re-searching. The same machinery powers **optimistic execution**: a
//! partial gather can be checked *speculatively*
//! (`Predictor::speculate_round`) to pre-warm the cache; the real round
//! on the completed snapshot reconciles against the speculated base and
//! either commits (hit) or cancels and re-runs cold (miss).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use cb_mc::{
    replay_path, EventFilter, FilterSet, FoundViolation, PathStep, ReplayOutcome, SearchConfig,
    Searcher, WorkerPool,
};
use cb_model::hashing::combine;
use cb_model::{
    apply_event, stable_hash, EventKey, GlobalState, NodeId, PropertySet, Protocol, SimTime,
};
use cb_snapshot::{DeltaDecoder, DeltaEncoder, DeltaError, DeltaStats, StateDelta};

use crate::cache::{CacheCounters, CacheStats, PredictionCache};
use crate::controller::ControllerConfig;

/// Where prediction rounds execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CheckerMode {
    /// Rounds run inline in [`crate::Controller::run_round`] and block the
    /// caller; filters activate after the *modeled* `mc_latency`.
    /// Deterministic — the right mode for tests and repeatable
    /// experiments.
    #[default]
    Synchronous,
    /// Rounds run on a background `CheckerPool` with a single shard —
    /// the live system keeps stepping, results are drained from the
    /// controller's hook entry points, and filters activate when their
    /// round actually completes, so `mc_latency` becomes a measurement
    /// instead of a model.
    Background,
    /// Rounds run on a background `CheckerPool` with `shards` shard
    /// threads: rounds are sharded by node (per-node `known_paths`
    /// affinity), so snapshots from different nodes check concurrently.
    /// `Sharded { shards: 1 }` ≡ [`CheckerMode::Background`].
    ///
    /// Affinity granularity, by design: each shard remembers only the
    /// error paths its *own* nodes' rounds discovered, so a node's
    /// replay fast path (§3.3 "Rechecking Previously Discovered
    /// Violations") is always served by its shard, but a path learned
    /// from a node on another shard is not replayed — the main
    /// consequence-prediction run remains the discovery mechanism
    /// across shards. With 1 shard this coincides exactly with the
    /// global `known_paths` of the synchronous backend.
    Sharded {
        /// Number of checker shard threads (at least 1).
        shards: usize,
    },
}

impl CheckerMode {
    /// Shard-thread count this mode asks for (0 = no background service).
    pub(crate) fn shard_count(self) -> usize {
        match self {
            CheckerMode::Synchronous => 0,
            CheckerMode::Background => 1,
            CheckerMode::Sharded { shards } => shards.max(1),
        }
    }
}

/// Identity of one checking round: which snapshot is being checked and in
/// which controller mode — the job description every `Predictor` stage
/// receives.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PredictionJob {
    /// When the snapshot that feeds the round completed (simulated time).
    pub at: SimTime,
    /// The node whose snapshot is checked (also the shard key).
    pub node: NodeId,
    /// Whether the round should derive and safety-check filters.
    pub steering: bool,
    /// Observability round id (`cb_obs` causality tag), minted by the
    /// submitter and carried through every stage so one
    /// gather→predict→install round is joinable across threads in a
    /// trace. 0 = untagged. Never read by any deterministic surface.
    pub tag: u64,
}

/// The outcome of one checking round, ready for the controller to apply.
pub(crate) struct RoundResult<P: Protocol> {
    /// Submission sequence number (background pools only; 0 inline).
    /// Lanes complete out of order, so the controller sorts a drained
    /// batch by `seq` before applying — background rounds then fold into
    /// the live state in exactly the order they were submitted, which is
    /// what makes a fleet run reproducible across host thread counts.
    pub seq: u64,
    /// When the snapshot that fed the round completed (simulated time).
    pub at: SimTime,
    /// The node whose snapshot was checked.
    pub node: NodeId,
    /// Whether this round was asked to steer (vs debug-only).
    pub steering: bool,
    /// Known-path replays that re-discovered their violation.
    pub replays_rediscovered: u64,
    /// Filters reinstated by replay (active immediately on application).
    pub replay_filters: Vec<EventFilter>,
    /// The shallowest predicted violation, if any.
    pub found: Option<FoundViolation<P>>,
    /// States the prediction run visited.
    pub states_visited: usize,
    /// The derived, safety-checked corrective filter, if steering found
    /// one.
    pub filter: Option<EventFilter>,
    /// Measured wall-clock time of the whole round (replay + prediction +
    /// safety check) — the paper's "model checker runs for n seconds",
    /// observed rather than assumed.
    pub wall: Duration,
}

/// The cacheable payload of one completed checking round — everything a
/// round computes that depends only on its inputs (snapshot state,
/// configuration, remembered paths), and none of the per-submission
/// envelope (`seq`, `at`, measured wall time). This is what a
/// [`crate::PredictionCache`] entry holds; replaying it through
/// [`Predictor::run_round`] yields a `RoundResult` identical to a cold
/// run's.
pub(crate) struct CachedRound<P: Protocol> {
    replays_rediscovered: u64,
    replay_filters: Vec<EventFilter>,
    found: Option<FoundViolation<P>>,
    states_visited: usize,
    filter: Option<EventFilter>,
}

/// One CrystalBall checking round: the checker-side half of the
/// controller, holding the state that belongs to checking (the remembered
/// error paths) and none of the live-side state (installed filters, ISC).
pub(crate) struct Predictor<P: Protocol> {
    protocol: P,
    props: PropertySet<P>,
    /// Shared with the controller and every sibling shard — one
    /// allocation, not one clone per shard.
    config: Arc<ControllerConfig>,
    /// The main-run search config, derived from `config.search` once at
    /// construction instead of once per round.
    predict_cfg: SearchConfig,
    /// The safety-re-check config minus the candidate filter, likewise
    /// derived once.
    safety_base: SearchConfig,
    /// The shared pool all of this round's independent searches run on.
    pool: WorkerPool,
    /// Remembered error paths, each keyed by its deterministic path hash
    /// (§3.3 replays). The hash both dedups — an error path rediscovered
    /// every round must not crowd identical copies into the
    /// `max_known_paths` replay slots — and makes the set cheap to
    /// fingerprint into cache keys.
    known_paths: VecDeque<(u64, Vec<PathStep<P>>)>,
    /// The shared round-outcome memo (host-wide under a `CheckerHost`;
    /// private in a synchronous backend).
    cache: Arc<PredictionCache>,
    /// This client's share of the cache traffic.
    counters: Arc<CacheCounters>,
    /// Memoization toggle ([`ControllerConfig::prediction_cache`]).
    use_cache: bool,
    /// Fingerprint of everything round outcomes depend on besides the
    /// submitted state and the remembered paths: the protocol instance
    /// (its `Debug` form — the trait is not `Hash`, and two members may
    /// run the same protocol type with different bug knobs), the property
    /// set, the engine, and the derived search/safety configs. Computed
    /// once; folded into every round key.
    static_key: u64,
    /// Outstanding speculation per node: the cache key of the partial
    /// state a speculative round ran on, awaiting reconciliation against
    /// the node's next real round.
    spec_keys: HashMap<NodeId, u64>,
}

// Scrapeable round timings. These sit below every backend (fleet hosts,
// the live checker process, sync controllers), so one set of families
// covers "how long do checking rounds take" everywhere.
static M_ROUND_US: cb_obs::metrics::Hist = cb_obs::metrics::Hist::new(
    "cb_checker_round_us",
    "whole checking round wall time (replay + prediction + safety), microseconds",
);
static M_REPLAY_US: cb_obs::metrics::Hist = cb_obs::metrics::Hist::new(
    "cb_checker_replay_us",
    "known-path replay wall time, microseconds",
);
static M_PREDICT_US: cb_obs::metrics::Hist = cb_obs::metrics::Hist::new(
    "cb_checker_predict_us",
    "consequence-prediction search wall time, microseconds",
);

impl<P: Protocol> Predictor<P> {
    pub(crate) fn new(
        protocol: P,
        props: PropertySet<P>,
        config: Arc<ControllerConfig>,
        pool: WorkerPool,
        cache: Arc<PredictionCache>,
        counters: Arc<CacheCounters>,
    ) -> Self {
        M_ROUND_US.touch();
        M_REPLAY_US.touch();
        M_PREDICT_US.touch();
        crate::cache::touch_metric_families();
        let predict_cfg = SearchConfig {
            prune_local: true,
            ..config.search.clone()
        };
        let safety_base = SearchConfig {
            max_states: Some(config.safety_check_states),
            prune_local: true,
            ..config.search.clone()
        };
        let static_key = combine(
            stable_hash(&format!("{protocol:?}")),
            combine(
                stable_hash(&props.names()),
                combine(
                    stable_hash(&format!("{:?}", config.engine)),
                    combine(
                        stable_hash(&format!("{predict_cfg:?}")),
                        stable_hash(&format!("{safety_base:?}")),
                    ),
                ),
            ),
        );
        let static_key = combine(
            static_key,
            stable_hash(&(
                config.replay_known_paths,
                config.check_filter_safety,
                config.reset_connection_on_block,
                config.max_known_paths,
            )),
        );
        // A deadline-bounded search's outcome depends on wall-clock speed;
        // memoizing it would trade determinism for throughput.
        let use_cache = config.prediction_cache && predict_cfg.deadline.is_none();
        Predictor {
            protocol,
            props,
            config,
            predict_cfg,
            safety_base,
            pool,
            known_paths: VecDeque::new(),
            cache,
            counters,
            use_cache,
            static_key,
            spec_keys: HashMap::new(),
        }
    }

    /// The canonical cache key of one round: static fingerprint + the
    /// submitted neighborhood's state hash + the job identity (node and
    /// steering decide filter derivation) + the remembered-path set the
    /// replays will run (order-dependent — replay filters apply in
    /// `known_paths` order). `None` when memoization is off.
    fn round_key(&self, job: &PredictionJob, start: &GlobalState<P>) -> Option<u64> {
        if !self.use_cache {
            return None;
        }
        let mut key = combine(self.static_key, start.state_hash());
        key = combine(key, stable_hash(&(job.node.0, job.steering)));
        for (path_hash, _) in &self.known_paths {
            key = combine(key, *path_hash);
        }
        Some(key)
    }

    /// Runs one full round against a decoded snapshot state, consulting
    /// the prediction cache first. A hit reproduces the cold round's
    /// result (and its `remember_path` side effect) without searching; a
    /// miss computes and memoizes. Either way this is also where an
    /// outstanding speculation for the node reconciles: same key ⇒ the
    /// speculative work *commits* (it is the entry being hit), different
    /// key ⇒ it is *cancelled* — counted, never applied.
    pub(crate) fn run_round(
        &mut self,
        job: PredictionJob,
        start: &GlobalState<P>,
    ) -> RoundResult<P> {
        let _span = cb_obs::span_id("checker.round", "checker", job.tag);
        let t0 = Instant::now();
        let key = self.round_key(&job, start);
        if let Some(spec) = self.spec_keys.remove(&job.node) {
            if key == Some(spec) {
                self.counters.spec_committed();
            } else {
                self.counters.spec_cancelled();
            }
        }
        if let Some(key) = key {
            if let Some(cached) = self.cache.lookup::<CachedRound<P>>(key, &self.counters) {
                if let Some(found) = &cached.found {
                    self.remember_path(found);
                }
                let out = Self::materialize(job, &cached, t0);
                M_ROUND_US.observe(out.wall.as_micros() as u64);
                return out;
            }
        }
        let round = self.compute_round(&job, start);
        if let Some(found) = &round.found {
            self.remember_path(found);
        }
        let round = Arc::new(round);
        if let Some(key) = key {
            self.cache.insert(key, round.clone(), &self.counters);
        }
        let out = Self::materialize(job, &round, t0);
        M_ROUND_US.observe(out.wall.as_micros() as u64);
        out
    }

    /// Runs one round **speculatively** on a (typically partial) snapshot
    /// state: computes the outcome with no side effects — nothing is
    /// remembered, reported, or turned into installed filters — and
    /// pre-warms the cache under the partial state's key. The node's next
    /// real round reconciles: if the completed snapshot hashes to this
    /// base the round hits the pre-warmed entry (commit), otherwise the
    /// work is discarded and the round runs cold (cancel).
    pub(crate) fn speculate_round(&mut self, job: PredictionJob, start: &GlobalState<P>) {
        let _span = cb_obs::span_id("checker.spec_round", "checker", job.tag);
        let Some(key) = self.round_key(&job, start) else {
            return;
        };
        self.counters.spec_started();
        self.spec_keys.insert(job.node, key);
        if self.cache.contains(key) {
            return;
        }
        let round = self.compute_round(&job, start);
        self.cache.insert(key, Arc::new(round), &self.counters);
    }

    /// This predictor's prediction-cache and speculation counters.
    pub(crate) fn cache_stats(&self) -> CacheStats {
        self.counters.snapshot()
    }

    /// Dresses a cached outcome in one submission's envelope.
    fn materialize(job: PredictionJob, round: &CachedRound<P>, t0: Instant) -> RoundResult<P> {
        RoundResult {
            seq: 0,
            at: job.at,
            node: job.node,
            steering: job.steering,
            replays_rediscovered: round.replays_rediscovered,
            replay_filters: round.replay_filters.clone(),
            found: round.found.clone(),
            states_visited: round.states_visited,
            filter: round.filter.clone(),
            wall: t0.elapsed(),
        }
    }

    /// The three search stages of one round, side-effect free (the caller
    /// owns `remember_path` and memoization). Stage 1 (known-path
    /// replays) and stage 2 (consequence prediction) are independent
    /// searches and execute concurrently on the shared pool; stage 3 (the
    /// filter-safety re-check) consumes stage 2's result and follows on
    /// the same pool.
    fn compute_round(&self, job: &PredictionJob, start: &GlobalState<P>) -> CachedRound<P> {
        // Stages 1 ∥ 2. The replays land in per-path slots so their
        // results are consumed in deterministic (known_paths) order no
        // matter which worker ran them.
        let this: &Predictor<P> = self;
        let n_replays = if this.config.replay_known_paths {
            this.known_paths.len()
        } else {
            0
        };
        let replay_slots: Vec<Mutex<Option<ReplayOutcome>>> =
            (0..n_replays).map(|_| Mutex::new(None)).collect();
        let outcome = this.pool.scope(|scope| {
            for (slot, (_, path)) in replay_slots.iter().zip(this.known_paths.iter()) {
                scope.spawn(move || {
                    // Fast path: replay previously discovered error paths
                    // (§3.3/§4). "If the problem reappears, CrystalBall
                    // immediately reinstalls the appropriate filter."
                    let _span = cb_obs::span_id("checker.replay", "checker", job.tag);
                    let t = cb_obs::metrics::enabled().then(Instant::now);
                    let out = replay_path(&this.protocol, &this.props, start, path, 256);
                    if let Some(t) = t {
                        M_REPLAY_US.observe(t.elapsed().as_micros() as u64);
                    }
                    *slot.lock().expect("replay slot poisoned") = Some(out);
                });
            }
            // The main consequence-prediction run (Fig. 8) on the calling
            // thread, which also lends a hand to queued pool work via the
            // engine's own scopes.
            let _span = cb_obs::span_id("checker.predict", "checker", job.tag);
            let t = cb_obs::metrics::enabled().then(Instant::now);
            let out = this.stage_predict(start);
            if let Some(t) = t {
                M_PREDICT_US.observe(t.elapsed().as_micros() as u64);
            }
            out
        });

        let mut replays_rediscovered = 0;
        let mut replay_filters = Vec::new();
        for (slot, (_, path)) in replay_slots.iter().zip(self.known_paths.iter()) {
            let out = slot
                .lock()
                .expect("replay slot poisoned")
                .take()
                .expect("replay ran");
            if out.violates() {
                replays_rediscovered += 1;
                if job.steering {
                    if let Some(filter) = self.derive_filter(job.node, start, path) {
                        replay_filters.push(filter);
                    }
                }
            }
        }

        let found = outcome.first().cloned();
        let mut filter = None;
        if let Some(found) = &found {
            if job.steering {
                // Stage 3: the safety re-check, on the same shared pool.
                let _span = cb_obs::span_id("checker.safety", "checker", job.tag);
                filter = self
                    .derive_filter(job.node, start, &found.path)
                    .filter(|f| self.filter_is_safe(start, f, found.depth));
            }
        }

        CachedRound {
            replays_rediscovered,
            replay_filters,
            found,
            states_visited: outcome.stats.states_visited,
            filter,
        }
    }

    /// Stage 2: the main consequence-prediction search (Fig. 8), on
    /// whichever engine the controller was configured with, drawing
    /// parallel workers from the shared pool.
    fn stage_predict(&self, start: &GlobalState<P>) -> cb_mc::SearchOutcome<P> {
        Searcher::new(&self.protocol, &self.props, self.predict_cfg.clone()).search_on(
            start,
            &self.config.engine,
            Some(&self.pool),
        )
    }

    fn remember_path(&mut self, found: &FoundViolation<P>) {
        // Deterministic path fingerprint: the ordered event sequence (the
        // `TraceStep`s are derived from the events and need not hash).
        // `Event<P>`'s derived `Hash` demands `P: Hash`, which `Protocol`
        // does not promise — the `Debug` form is the stable identity.
        let h = found.path.iter().fold(0xcb, |acc, step| {
            combine(acc, stable_hash(&format!("{:?}", step.event)))
        });
        if self.known_paths.iter().any(|(k, _)| *k == h) {
            // The same error path rediscovered on a later round: it is
            // already in a replay slot, and duplicating it would both
            // waste `max_known_paths` budget and keep the remembered-path
            // fingerprint (hence every cache key) churning forever.
            return;
        }
        self.known_paths.push_back((h, found.path.clone()));
        while self.known_paths.len() > self.config.max_known_paths {
            self.known_paths.pop_front();
        }
    }

    /// Picks the corrective action: the earliest event on the predicted
    /// path that `node`'s own runtime can intercept ("Our current policy is
    /// to steer the execution as early as possible", §3.3).
    fn derive_filter(
        &self,
        node: NodeId,
        start: &GlobalState<P>,
        path: &[PathStep<P>],
    ) -> Option<EventFilter> {
        // Walk the path, tracking intermediate states so event keys resolve.
        // Paths remembered from earlier snapshots may not replay on this
        // one (message indices go stale); stop at the first event that no
        // longer resolves rather than applying it blindly.
        let mut state = start.clone();
        for step in path {
            let key = step.event.key(&state)?;
            match key {
                EventKey::Message { kind, src, dst } if dst == node => {
                    return Some(EventFilter::Message {
                        kind,
                        src,
                        dst,
                        reset_connection: self.config.reset_connection_on_block,
                    });
                }
                EventKey::Action { kind, node: n } if n == node => {
                    return Some(EventFilter::Handler { kind, node });
                }
                _ => {}
            }
            apply_event(&self.protocol, &mut state, &step.event);
        }
        None
    }

    /// Stage 3 — §3.3 "Checking Safety of Event Filters": re-run
    /// consequence prediction with the filter applied. The filter is deemed
    /// safe when the steered execution reaches no violation within the
    /// budget, or none *sooner* than the unfiltered execution would —
    /// blocking an event must not hasten an inconsistency, but it need not
    /// fix futures that were already independently broken (e.g. a
    /// different node's reset tripping the same protocol bug along a
    /// parallel path).
    fn filter_is_safe(
        &self,
        start: &GlobalState<P>,
        filter: &EventFilter,
        unfiltered_depth: usize,
    ) -> bool {
        if !self.config.check_filter_safety {
            return true;
        }
        let cfg = SearchConfig {
            filters: FilterSet::from_iter([filter.clone()]),
            ..self.safety_base.clone()
        };
        let outcome = Searcher::new(&self.protocol, &self.props, cfg).search_on(
            start,
            &self.config.engine,
            Some(&self.pool),
        );
        match outcome.first() {
            None => true,
            Some(found) => found.depth >= unfiltered_depth,
        }
    }
}

/// A protocol-agnostic set of long-lived checker **lanes** (threads) that
/// any number of `CheckerPool`s — over *different* protocol types —
/// submit their rounds to. This is how a fleet of co-deployed
/// heterogeneous simulations shares one checker service: each
/// controller's pool keeps its own per-shard state (predictor, diff
/// decoders), but the threads doing the checking are fleet-wide, so a
/// member with nothing to check donates its lanes to a busy neighbor.
///
/// Routing invariant: a `CheckerPool` shard is pinned to one lane for
/// its lifetime, and each lane is a single thread draining a FIFO
/// channel — so the per-shard (and hence per-node) round order that the
/// diff-shipping codec and the replay cache rely on survives sharing.
pub struct CheckerHost {
    lanes: Vec<mpsc::Sender<HostJob>>,
    handles: Vec<thread::JoinHandle<()>>,
    next_lane: std::sync::atomic::AtomicUsize,
    /// The host-wide round-outcome memo: every pool on this host keys its
    /// predictors into one cache, so a state one fleet member already
    /// checked is a hit for every co-deployed member with the same
    /// protocol instance and configuration.
    cache: Arc<PredictionCache>,
}

type HostJob = Box<dyn FnOnce() + Send + 'static>;

impl CheckerHost {
    /// Spawns `lanes` checker threads (at least one) with the default
    /// prediction-cache capacity.
    pub fn new(lanes: usize) -> Self {
        Self::with_cache_capacity(lanes, crate::cache::DEFAULT_PREDICTION_CACHE_CAPACITY)
    }

    /// Spawns `lanes` checker threads with a prediction cache bounded to
    /// `cache_capacity` round outcomes.
    pub fn with_cache_capacity(lanes: usize, cache_capacity: usize) -> Self {
        let n = lanes.max(1);
        let mut txs = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for i in 0..n {
            let (tx, rx) = mpsc::channel::<HostJob>();
            let handle = thread::Builder::new()
                .name(format!("cb-checker-lane-{i}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
                .expect("spawn checker lane");
            txs.push(tx);
            handles.push(handle);
        }
        CheckerHost {
            lanes: txs,
            handles,
            next_lane: std::sync::atomic::AtomicUsize::new(0),
            cache: Arc::new(PredictionCache::with_capacity(cache_capacity)),
        }
    }

    /// Number of lane threads.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// The host-wide prediction cache (shared by every pool on the host).
    pub fn prediction_cache(&self) -> &Arc<PredictionCache> {
        &self.cache
    }

    /// Round-robin lane assignment for a new shard (deterministic in
    /// construction order).
    fn assign_lane(&self) -> usize {
        self.next_lane
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            % self.lanes.len()
    }

    fn submit(&self, lane: usize, job: HostJob) {
        // A send can only fail during teardown; rounds are droppable then.
        let _ = self.lanes[lane].send(job);
    }
}

impl Drop for CheckerHost {
    fn drop(&mut self) {
        // Closing the channels wakes the lanes; each drains its queued
        // jobs (clients that shut down flag theirs to no-op) and exits.
        self.lanes.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The shard-side state a lane locks while it runs one of the shard's
/// rounds: the predictor (replay cache) and the decoder halves of the
/// diff channels. Uncontended in practice — a shard's rounds are
/// serialized by its lane.
struct ShardState<P: Protocol> {
    predictor: Predictor<P>,
    decoders: HashMap<NodeId, DeltaDecoder>,
}

struct Shard<P: Protocol> {
    /// Submission-side halves of the shard's diff channels, one lineage
    /// per submitting node (decoder twins live in [`ShardState`]).
    /// Per-node, not per-channel: consecutive snapshots of one node's
    /// neighborhood diff well; interleaved different-node neighborhoods
    /// would thrash a single shared base.
    encoders: HashMap<NodeId, DeltaEncoder>,
    lane: usize,
    state: Arc<Mutex<ShardState<P>>>,
}

/// The background checker service: per-node-sharded client of a
/// [`CheckerHost`]. Each shard owns a `Predictor` and the decoder half
/// of a diff-shipping channel, pinned to one host lane; results flow
/// back over one shared channel. Rounds are routed by `node mod shards`,
/// so a node's remembered error paths stay with the shard that replays
/// them while different nodes' snapshots check in parallel. Submission
/// never blocks; results are polled. With no shared host the pool spawns
/// a private one (one lane per shard) — the pre-fleet topology.
pub(crate) struct CheckerPool<P: Protocol> {
    shards: Vec<Shard<P>>,
    host: Arc<CheckerHost>,
    results: mpsc::Receiver<RoundResult<P>>,
    res_tx: mpsc::Sender<RoundResult<P>>,
    shutdown: Arc<AtomicBool>,
    submitted: u64,
    drained: u64,
    /// This pool's share of the (possibly host-wide) prediction-cache
    /// traffic — all shards bump one set, so the controller reports a
    /// per-member view of a fleet-shared cache.
    counters: Arc<CacheCounters>,
}

impl<P: Protocol> CheckerPool<P> {
    /// Creates `shards` checker shards, each with its own `Predictor`
    /// sharing `pool` for search parallelism, running on `host` (or on a
    /// freshly spawned private host when `None`). All predictors memoize
    /// into the host's shared [`PredictionCache`].
    pub(crate) fn spawn(
        protocol: &P,
        props: &PropertySet<P>,
        config: &Arc<ControllerConfig>,
        pool: &WorkerPool,
        shards: usize,
        host: Option<Arc<CheckerHost>>,
    ) -> Self {
        let shards_n = shards.max(1);
        let host = host.unwrap_or_else(|| {
            Arc::new(CheckerHost::with_cache_capacity(
                shards_n,
                config.prediction_cache_capacity,
            ))
        });
        let counters = Arc::new(CacheCounters::default());
        let (res_tx, res_rx) = mpsc::channel::<RoundResult<P>>();
        let shutdown = Arc::new(AtomicBool::new(false));
        let shards = (0..shards_n)
            .map(|_| Shard {
                encoders: HashMap::new(),
                lane: host.assign_lane(),
                state: Arc::new(Mutex::new(ShardState {
                    predictor: Predictor::new(
                        protocol.clone(),
                        props.clone(),
                        config.clone(),
                        pool.clone(),
                        host.prediction_cache().clone(),
                        counters.clone(),
                    ),
                    decoders: HashMap::new(),
                })),
            })
            .collect();
        CheckerPool {
            shards,
            host,
            results: res_rx,
            res_tx,
            shutdown,
            submitted: 0,
            drained: 0,
            counters,
        }
    }

    /// Queues one round, diff-shipping the state against the last
    /// submission for the same node. Never blocks, never clones the
    /// decoded `GlobalState`. The returned sequence number travels with
    /// the round, so the controller can apply drained batches in
    /// submission order regardless of which lane finished first.
    pub(crate) fn submit(
        &mut self,
        at: SimTime,
        node: NodeId,
        start: &GlobalState<P>,
        steering: bool,
        tag: u64,
    ) {
        let ix = (node.0 as usize) % self.shards.len();
        let shard = &mut self.shards[ix];
        let delta = shard.encoders.entry(node).or_default().encode_state(start);
        self.submitted += 1;
        let seq = self.submitted;
        let state = shard.state.clone();
        let res_tx = self.res_tx.clone();
        let stop = self.shutdown.clone();
        self.host.submit(
            shard.lane,
            Box::new(move || {
                // A dropped pool flags its queued rounds to no-op so a
                // *shared* lane doesn't grind through a dead controller's
                // backlog before serving live neighbors.
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                // The round runs under catch_unwind so a panicking
                // predictor (a codec bug's decode assertion, a poisoned
                // shard mutex) still produces *a* result: otherwise
                // `pending()` never drains and every waiter blocks for
                // its full timeout, and — worse — the panic would kill a
                // lane other controllers share. The lane survives; the
                // panic is reported on stderr.
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut st = state.lock().expect("shard state poisoned");
                    let st = &mut *st;
                    // The encoder twin rides the same FIFO lane (per-node
                    // order preserved), so the bases stay in lockstep; a
                    // decode failure here is a codec bug, not a runtime
                    // condition.
                    let start: GlobalState<P> = st
                        .decoders
                        .entry(node)
                        .or_default()
                        .decode_state(&delta)
                        .expect("shard delta decodes against in-sync base");
                    st.predictor.run_round(
                        PredictionJob {
                            at,
                            node,
                            steering,
                            tag,
                        },
                        &start,
                    )
                }));
                let mut result = match outcome {
                    Ok(r) => r,
                    Err(payload) => {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".into());
                        eprintln!(
                            "crystalball: checker round for {node} panicked \
                             (empty result substituted, lane kept alive): {msg}"
                        );
                        RoundResult {
                            seq: 0,
                            at,
                            node,
                            steering,
                            replays_rediscovered: 0,
                            replay_filters: Vec::new(),
                            found: None,
                            states_visited: 0,
                            filter: None,
                            wall: Duration::ZERO,
                        }
                    }
                };
                result.seq = seq;
                let _ = res_tx.send(result); // receiver gone = pool dropped
            }),
        );
    }

    /// Queues one **speculative** round on a (typically partial) snapshot
    /// state: the node's shard pre-warms the prediction cache and records
    /// the speculated base for reconciliation, but no result is produced,
    /// no sequence number is consumed, and nothing reaches the
    /// controller's filters. The state is cloned rather than
    /// diff-shipped — speculative submissions are occasional and must not
    /// disturb the per-node delta lineages (their byte counts are part of
    /// the deterministic wire-stats contract).
    pub(crate) fn submit_speculative(
        &mut self,
        at: SimTime,
        node: NodeId,
        start: &GlobalState<P>,
        steering: bool,
        tag: u64,
    ) {
        let ix = (node.0 as usize) % self.shards.len();
        let shard = &self.shards[ix];
        let state = shard.state.clone();
        let stop = self.shutdown.clone();
        let start = start.clone();
        self.host.submit(
            shard.lane,
            Box::new(move || {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                // Same panic containment as real rounds — minus the empty
                // result, since nobody is waiting on a speculation.
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut st = state.lock().expect("shard state poisoned");
                    st.predictor.speculate_round(
                        PredictionJob {
                            at,
                            node,
                            steering,
                            tag,
                        },
                        &start,
                    );
                }));
                if outcome.is_err() {
                    eprintln!(
                        "crystalball: speculative round for {node} panicked \
                         (speculation dropped, lane kept alive)"
                    );
                }
            }),
        );
    }

    /// This pool's prediction-cache and speculation counters.
    pub(crate) fn cache_stats(&self) -> CacheStats {
        self.counters.snapshot()
    }

    /// Rounds submitted but not yet drained.
    pub(crate) fn pending(&self) -> u64 {
        self.submitted - self.drained
    }

    /// Aggregated submission-cost counters over all shards (full-clone
    /// bytes vs diff-shipped bytes).
    pub(crate) fn wire_stats(&self) -> DeltaStats {
        let mut total = DeltaStats::default();
        for s in &self.shards {
            for enc in s.encoders.values() {
                total.merge(&enc.stats);
            }
        }
        total
    }

    /// Takes every completed round without blocking.
    pub(crate) fn try_results(&mut self) -> Vec<RoundResult<P>> {
        let mut out = Vec::new();
        while let Ok(r) = self.results.try_recv() {
            self.drained += 1;
            out.push(r);
        }
        out
    }

    /// Blocks (up to `timeout`) until every submitted round has completed,
    /// returning all results drained along the way.
    pub(crate) fn wait_results(&mut self, timeout: Duration) -> Vec<RoundResult<P>> {
        let deadline = Instant::now() + timeout;
        let mut out = self.try_results();
        while self.pending() > 0 {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match self.results.recv_timeout(left) {
                Ok(r) => {
                    self.drained += 1;
                    out.push(r);
                }
                Err(_) => break,
            }
        }
        out
    }
}

impl<P: Protocol> Drop for CheckerPool<P> {
    fn drop(&mut self) {
        // Flag queued rounds to no-op (a shared host keeps serving other
        // pools; a private host joins its lanes when the Arc drops after
        // at most one in-flight round per lane).
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

/// One completed checking round in transport-friendly form — what a
/// checker *process* reports back to a live node it cannot share memory
/// with. The protocol-generic internals (the round's `FoundViolation<P>`
/// path) are flattened to the pieces that cross the wire: the violation,
/// its human-readable scenario, and the filters to install.
#[derive(Clone, Debug)]
pub struct WireRound {
    /// Submission sequence number (from [`WireChecker::submit_delta`]) —
    /// lets the caller match completions to submissions for
    /// prediction-to-install latency accounting.
    pub seq: u64,
    /// The node whose snapshot was checked (where filters install).
    pub node: NodeId,
    /// Timestamp the submitter attached (wall micros since its epoch, in
    /// live deployments).
    pub at: SimTime,
    /// The predicted violation, if the round found one.
    pub violation: Option<cb_model::Violation>,
    /// The paper-style numbered event path to the violation.
    pub scenario: Option<String>,
    /// The shallowest predicted path's length in events (present iff
    /// `violation` is) — what the predicted-violation alert reports as
    /// how close the deployment is to the bad state.
    pub depth: Option<usize>,
    /// Replay-reinstated filters plus the round's safety-checked
    /// corrective filter — everything the node should install, in
    /// application order.
    pub filters: Vec<EventFilter>,
    /// Known-path replays that re-discovered their violation.
    pub replays_rediscovered: u64,
    /// States the prediction run visited.
    pub states_visited: usize,
    /// Measured wall-clock time of the round.
    pub wall: Duration,
}

/// The transport-backed submission path into a [`CheckerHost`]: the
/// checker-process half of a *deployed* CrystalBall (`cb-live`).
///
/// Live nodes do not share an address space with the checker, so a round
/// arrives as a [`cb_snapshot::StateDelta`] (diffed by the node against
/// its previous submission) and leaves as a [`WireRound`] whose filters
/// the caller encodes into a filter-install push. In between, the rounds
/// run on the same sharded checker pool the in-process controller
/// uses — per-node shard affinity, known-path replays, filter-safety
/// re-checks and all.
///
/// Ordering contract: deltas from one node must be submitted in the order
/// that node produced them (its TCP connection is FIFO, so the live
/// server gets this for free); deltas from different nodes interleave
/// arbitrarily.
pub struct WireChecker<P: Protocol> {
    pool: CheckerPool<P>,
    /// Ingress decoder lineages, one per submitting node, mirroring the
    /// node-side [`DeltaEncoder`]s.
    decoders: HashMap<NodeId, DeltaDecoder>,
    /// Separate ingress lineages for speculative (partial-gather)
    /// submissions: nodes diff those against a dedicated encoder so the
    /// real submission stream's bases stay in lockstep.
    spec_decoders: HashMap<NodeId, DeltaDecoder>,
    steering: bool,
    submitted: u64,
}

impl<P: Protocol> WireChecker<P> {
    /// Spawns the checker backend: `config.checker` decides the shard
    /// count ([`CheckerMode::Synchronous`] is promoted to one background
    /// shard — a wire checker is background by construction), `host`
    /// optionally shares lanes with other checkers, and search parallelism
    /// comes from `pool`.
    pub fn new(
        protocol: P,
        props: PropertySet<P>,
        config: ControllerConfig,
        pool: WorkerPool,
        host: Option<Arc<CheckerHost>>,
    ) -> Self {
        let steering = config.mode == crate::controller::Mode::ExecutionSteering;
        let shards = config.checker.shard_count().max(1);
        let config = Arc::new(config);
        let pool = CheckerPool::spawn(&protocol, &props, &config, &pool, shards, host);
        WireChecker {
            pool,
            decoders: HashMap::new(),
            spec_decoders: HashMap::new(),
            steering,
            submitted: 0,
        }
    }

    /// Decodes one shipped state and queues its checking round. Returns
    /// the round's sequence number, or the decode failure (out-of-order /
    /// corrupt deltas — a protocol error on the submitting connection;
    /// the caller should drop that connection, which also resets the
    /// node's lineage via [`WireChecker::forget_node`]).
    ///
    /// A delta with `seq == 1` is an explicit **lineage restart**: it can
    /// only come from a freshly constructed encoder (encoders never
    /// re-emit 1), so any stale decoder state for the node is discarded
    /// rather than rejecting the new stream. This absorbs the reconnect
    /// race where a node redials before its dead connection is reaped.
    pub fn submit_delta(
        &mut self,
        at: SimTime,
        node: NodeId,
        delta: &StateDelta,
    ) -> Result<u64, DeltaError> {
        self.submit_delta_tagged(at, node, delta, 0)
    }

    /// [`WireChecker::submit_delta`] carrying the submitter's
    /// observability round id (`cb_obs` causality tag): the checker's
    /// replay/predict/safety spans for this round are recorded under
    /// `tag`, joining them to the node-side gather and install spans in
    /// an exported trace. The tag has no effect on the round's outcome.
    pub fn submit_delta_tagged(
        &mut self,
        at: SimTime,
        node: NodeId,
        delta: &StateDelta,
        tag: u64,
    ) -> Result<u64, DeltaError> {
        if delta.seq == 1 {
            self.decoders.remove(&node);
        }
        let start: GlobalState<P> = self.decoders.entry(node).or_default().decode_state(delta)?;
        self.pool.submit(at, node, &start, self.steering, tag);
        self.submitted += 1;
        Ok(self.submitted)
    }

    /// Decodes one **speculative** shipped state — a partial gather the
    /// node submitted before its stragglers answered — and queues an
    /// optimistic round that pre-warms the prediction cache (see
    /// `CheckerPool::submit_speculative`). No sequence number is
    /// returned: speculations produce no [`WireRound`], only a possible
    /// cache hit for the node's next real submission.
    pub fn submit_speculative_delta(
        &mut self,
        at: SimTime,
        node: NodeId,
        delta: &StateDelta,
    ) -> Result<(), DeltaError> {
        self.submit_speculative_delta_tagged(at, node, delta, 0)
    }

    /// [`WireChecker::submit_speculative_delta`] carrying the
    /// submitter's observability round id (see
    /// [`WireChecker::submit_delta_tagged`]).
    pub fn submit_speculative_delta_tagged(
        &mut self,
        at: SimTime,
        node: NodeId,
        delta: &StateDelta,
        tag: u64,
    ) -> Result<(), DeltaError> {
        if delta.seq == 1 {
            self.spec_decoders.remove(&node);
        }
        let start: GlobalState<P> = self
            .spec_decoders
            .entry(node)
            .or_default()
            .decode_state(delta)?;
        self.pool
            .submit_speculative(at, node, &start, self.steering, tag);
        Ok(())
    }

    /// Drops a node's delta lineages (its connection closed; a reconnect
    /// starts fresh encoders, so the decoders must start fresh too).
    pub fn forget_node(&mut self, node: NodeId) {
        self.decoders.remove(&node);
        self.spec_decoders.remove(&node);
    }

    /// Rounds submitted but not yet completed.
    pub fn pending(&self) -> u64 {
        self.pool.pending()
    }

    /// Submission-side wire-cost counters (what full clones would have
    /// shipped vs what the internal delta channels did ship).
    pub fn wire_stats(&self) -> DeltaStats {
        self.pool.wire_stats()
    }

    /// Prediction-cache and speculation counters for this checker's
    /// rounds (its share of the host-wide cache).
    pub fn cache_stats(&self) -> CacheStats {
        self.pool.cache_stats()
    }

    /// Takes every completed round without blocking, in submission order.
    pub fn try_rounds(&mut self) -> Vec<WireRound> {
        let mut results = self.pool.try_results();
        results.sort_by_key(|r| r.seq);
        results.into_iter().map(Self::flatten).collect()
    }

    /// Blocks (up to `timeout`) until every submitted round completes —
    /// the graceful-drain path of a live shutdown.
    pub fn drain(&mut self, timeout: Duration) -> Vec<WireRound> {
        let mut results = self.pool.wait_results(timeout);
        results.sort_by_key(|r| r.seq);
        results.into_iter().map(Self::flatten).collect()
    }

    fn flatten(r: RoundResult<P>) -> WireRound {
        let mut filters = r.replay_filters;
        filters.extend(r.filter);
        WireRound {
            seq: r.seq,
            node: r.node,
            at: r.at,
            violation: r.found.as_ref().map(|f| f.violation.clone()),
            scenario: r.found.as_ref().map(|f| f.scenario()),
            depth: r.found.as_ref().map(|f| f.depth),
            filters,
            replays_rediscovered: r.replays_rediscovered,
            states_visited: r.states_visited,
            wall: r.wall,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::Mode;
    use cb_mc::SearchConfig;
    use cb_model::testproto::{max_pings_property, Ping, PingMsg};
    use cb_model::{Decode, Encode, Payload};
    use cb_snapshot::DeltaEncoder;

    fn ping_config() -> ControllerConfig {
        ControllerConfig {
            mode: Mode::ExecutionSteering,
            checker: CheckerMode::Sharded { shards: 2 },
            search: SearchConfig {
                max_states: Some(5_000),
                max_depth: Some(4),
                ..SearchConfig::default()
            },
            ..ControllerConfig::default()
        }
    }

    /// The wire path end to end in-process: a node-side `DeltaEncoder`
    /// ships states, the checker decodes, predicts, and hands back
    /// filters in transport-friendly form.
    #[test]
    fn wire_checker_predicts_from_shipped_deltas() {
        let proto = Ping {
            kick_target: NodeId(0),
            kick_enabled: true,
        };
        let props = PropertySet::new().with(max_pings_property(1));
        let mut checker = WireChecker::new(
            proto.clone(),
            props,
            ping_config(),
            WorkerPool::new(1),
            None,
        );
        // The "node side": successive neighborhood states, diff-shipped.
        let mut enc = DeltaEncoder::new();
        let gs = GlobalState::init(&proto, (0..3).map(NodeId));
        let d1 = enc.encode_state(&gs);
        // Ship over a simulated wire: encode → bytes → decode.
        let d1 = StateDelta::from_bytes(&d1.to_bytes()).expect("delta codec");
        let seq = checker
            .submit_delta(SimTime(1), NodeId(0), &d1)
            .expect("in-order delta");
        assert_eq!(seq, 1);
        let rounds = checker.drain(Duration::from_secs(60));
        assert_eq!(rounds.len(), 1);
        let round = &rounds[0];
        assert_eq!(round.node, NodeId(0));
        assert_eq!(round.seq, 1);
        let v = round.violation.as_ref().expect("ping limit 1 is reachable");
        assert_eq!(v.property, "MaxPings");
        assert!(round.scenario.as_ref().unwrap().contains("1."));
        assert!(
            !round.filters.is_empty(),
            "steering mode derives an installable filter"
        );
        // The filter protects the node the round was for, and its wire
        // codec round-trips against the protocol's kind tables.
        let f = &round.filters[0];
        assert_eq!(f.install_at(), NodeId(0));
        let bytes = round.filters.to_bytes();
        let decoded = EventFilter::decode_list(&bytes, proto.message_kinds(), proto.action_kinds())
            .expect("filters resolve against Ping's kind tables");
        assert_eq!(decoded, round.filters);
        // The decoded filter actually blocks the predicted delivery.
        let key = cb_model::EventKey::Message {
            kind: Ping::message_kind(&PingMsg::Ping),
            src: match f {
                EventFilter::Message { src, .. } => *src,
                other => panic!("expected a message filter, got {other}"),
            },
            dst: NodeId(0),
        };
        assert!(decoded[0].matches(&key));
        let _ = Payload::Msg::<PingMsg>(PingMsg::Ping); // keep import honest

        // A second, changed state diff-ships against the first.
        let mut gs2 = gs.clone();
        gs2.slot_mut(NodeId(1)).unwrap().state.pings_seen = 1;
        let d2 = enc.encode_state(&gs2);
        checker
            .submit_delta(SimTime(2), NodeId(0), &d2)
            .expect("second in-order delta");
        assert_eq!(checker.drain(Duration::from_secs(60)).len(), 1);
        let ws = checker.wire_stats();
        assert!(ws.states >= 2);

        // Out-of-order deltas (seq ≥ 2 not continuing the stream) are
        // rejected — the caller drops the connection and starts over.
        let stale = d2.clone();
        assert!(matches!(
            checker.submit_delta(SimTime(3), NodeId(0), &stale),
            Err(DeltaError::OutOfOrder { .. })
        ));
        // A seq-1 delta is an explicit lineage restart: accepted against
        // any decoder state without an intervening forget_node (the
        // reconnect race), because encoders never re-emit seq 1.
        let mut enc2 = DeltaEncoder::new();
        let fresh = enc2.encode_state(&gs);
        assert_eq!(fresh.seq, 1);
        assert!(checker.submit_delta(SimTime(4), NodeId(0), &fresh).is_ok());
        // forget_node also resets the lineage for an explicit teardown.
        checker.forget_node(NodeId(0));
        let mut enc3 = DeltaEncoder::new();
        let fresh2 = enc3.encode_state(&gs);
        assert!(checker.submit_delta(SimTime(5), NodeId(0), &fresh2).is_ok());
        checker.drain(Duration::from_secs(60));
    }
}
