//! Reactor-equivalence tests for `cb-live`: the poll-driven reactor must
//! be a pure *scheduling* change. Whether six nodes share one reactor
//! thread, two, or get one each (PR 5's thread-per-node shape as the
//! degenerate case), the protocol-level outcomes of the same scenario
//! are the same — overlay forms, wire gathers complete, submissions
//! reach the checker, a prediction comes back as a filter-install push.
//!
//! Same determinism contract as `live_deployment.rs`: real scheduling
//! means no trace equality, so "equivalence" is outcome equivalence,
//! asserted through bounded polls under a watchdog.

use std::sync::{mpsc, Mutex, MutexGuard, OnceLock};
use std::thread;
use std::time::Duration;

use crystalball_suite::live::{
    live_checker_config, randtree_deployment_on, wait_until, LiveConfig, LiveNodeConfig,
};
use crystalball_suite::model::NodeId;
use crystalball_suite::protocols::randtree::{Action as RtAction, RandTreeBugs, Status};

/// One live deployment at a time (same rationale as `live_deployment.rs`:
/// concurrent deployments starve each other into flaky timeouts on small
/// CI hosts).
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` on a helper thread and panics if it has not finished within
/// `limit` — a wedged reactor fails the test instead of hanging CI.
fn with_watchdog<T: Send + 'static>(
    limit: Duration,
    name: &str,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = thread::Builder::new()
        .name(format!("watchdog-{name}"))
        .spawn(move || {
            let _ = tx.send(f());
        })
        .expect("spawn watchdog body");
    let deadline = std::time::Instant::now() + limit;
    loop {
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(v) => {
                let _ = handle.join();
                return v;
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if handle.is_finished() {
                    if let Err(payload) = handle.join() {
                        std::panic::resume_unwind(payload);
                    }
                    panic!("{name}: body exited without a result");
                }
                if std::time::Instant::now() >= deadline {
                    panic!("{name}: wedged — did not finish within {limit:?}");
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                if let Err(payload) = handle.join() {
                    std::panic::resume_unwind(payload);
                }
                panic!("{name}: body exited without a result");
            }
        }
    }
}

/// The protocol-level outcomes one scenario run produced — the
/// equivalence surface compared across reactor sizings.
#[derive(Debug)]
struct Outcomes {
    joined: bool,
    snapshots_completed: u64,
    submits_sent: u64,
    predictions: u64,
    installs_sent: u64,
    installs_received: u64,
}

/// Runs the PR 5 steering scenario's first three phases (overlay forms →
/// root capacity opened by a kill → checker predicts and pushes filters)
/// on `threads` reactor threads and reports the outcomes.
fn run_scenario(threads: usize) -> Outcomes {
    let config = LiveConfig {
        seed: 7,
        node: LiveNodeConfig {
            checkpoint_interval: Duration::from_millis(80),
            gather_interval: Duration::from_millis(120),
            gather_timeout: Duration::from_millis(350),
            time_scale: 0.02,
            ..LiveNodeConfig::default()
        },
        checker: live_checker_config(8_000, 6, 2),
        ..LiveConfig::default()
    };
    let mut dep =
        randtree_deployment_on(6, RandTreeBugs::only("R1"), config, threads).expect("boot");
    assert_eq!(
        dep.reactor_threads(),
        if threads == 0 { 6 } else { threads },
        "builder honored the reactor sizing"
    );

    let joined = wait_until(&dep, Duration::from_secs(60), |d| {
        d.node_ids()
            .iter()
            .all(|&n| match d.probe(n, Duration::from_secs(2)) {
                Some(r) if r.slot.state.status == Status::Joined => true,
                Some(_) => {
                    d.inject(n, RtAction::Join { target: NodeId(0) });
                    false
                }
                None => false,
            })
    });

    // Open root capacity (the Fig. 2 precondition): kill a childless
    // root child for good.
    let root = dep
        .probe(NodeId(0), Duration::from_secs(5))
        .expect("probe root");
    let root_children: Vec<NodeId> = root.slot.state.children.iter().copied().collect();
    let mut sacrifice = *root_children.first().expect("root has children");
    for &c in &root_children {
        if dep
            .probe(c, Duration::from_secs(2))
            .is_some_and(|r| r.slot.state.children.is_empty())
        {
            sacrifice = c;
        }
    }
    dep.kill(sacrifice);

    // The loop closes: wire-gathered snapshots reach the checker, a
    // prediction comes back, and at least one node receives the push.
    wait_until(&dep, Duration::from_secs(45), |d| {
        d.probe_checker(Duration::from_secs(2))
            .is_some_and(|c| c.predictions > 0 && c.installs_sent > 0)
    });
    wait_until(&dep, Duration::from_secs(30), |d| {
        d.node_ids().iter().any(|&n| {
            d.is_up(n)
                && d.probe(n, Duration::from_secs(1))
                    .is_some_and(|r| r.stats.installs_received > 0)
        })
    });

    let report = dep.shutdown();
    let totals = report.stats.totals();
    Outcomes {
        joined,
        snapshots_completed: totals.snapshots_completed,
        submits_sent: totals.submits_sent,
        predictions: report.stats.checker.predictions,
        installs_sent: report.stats.checker.installs_sent,
        installs_received: totals.installs_received,
    }
}

/// The acceptance assertion: every reactor sizing reaches the same
/// protocol-level outcomes. Counters are scheduling-dependent, so the
/// comparison is on *predicates* (the outcome happened), not values.
#[test]
fn reactor_sizings_reach_equivalent_outcomes() {
    let _serial = serial();
    // threads = 1 (everything on one reactor), 2 (nodes split across
    // two), 0 → nodes (PR 5 thread-per-node as the degenerate case).
    for threads in [1usize, 2, 0] {
        let outcomes = with_watchdog(
            Duration::from_secs(150),
            &format!("equivalence-{threads}t"),
            move || run_scenario(threads),
        );
        eprintln!("[{threads} threads] outcomes: {outcomes:?}");
        assert!(
            outcomes.joined,
            "[{threads} threads] overlay formed: {outcomes:?}"
        );
        assert!(
            outcomes.snapshots_completed > 0,
            "[{threads} threads] wire gathers completed: {outcomes:?}"
        );
        assert!(
            outcomes.submits_sent > 0,
            "[{threads} threads] snapshots shipped to the checker: {outcomes:?}"
        );
        assert!(
            outcomes.predictions > 0,
            "[{threads} threads] checker predicted: {outcomes:?}"
        );
        assert!(
            outcomes.installs_sent > 0 && outcomes.installs_received > 0,
            "[{threads} threads] filters pushed and received over the wire: {outcomes:?}"
        );
    }
}

/// The scale smoke: 64 nodes multiplexed over 2 reactor threads form an
/// overlay and keep the snapshot machinery running — the deployment
/// shape PR 5's thread-per-node runtime could not host.
#[test]
fn sixty_four_nodes_on_two_reactor_threads() {
    let _serial = serial();
    with_watchdog(Duration::from_secs(240), "64-node", || {
        let config = LiveConfig {
            seed: 13,
            node: LiveNodeConfig {
                // Relaxed cadence: 64 nodes share two cores' worth of
                // reactor time, so per-node work must be sparse.
                checkpoint_interval: Duration::from_millis(300),
                gather_interval: Duration::from_millis(500),
                gather_timeout: Duration::from_millis(1200),
                time_scale: 0.02,
                self_check: false,
                speculate_partial_gathers: false,
                ..LiveNodeConfig::default()
            },
            checker: live_checker_config(2_000, 4, 1),
            ..LiveConfig::default()
        };
        let dep =
            randtree_deployment_on(64, RandTreeBugs::none(), config, 2).expect("boot 64 nodes");
        assert_eq!(dep.reactor_threads(), 2);

        // The overlay forms (joins cascade through the tree, so give
        // stragglers a re-kick when found idle in Init).
        let joined = wait_until(&dep, Duration::from_secs(120), |d| {
            d.node_ids()
                .iter()
                .all(|&n| match d.probe(n, Duration::from_secs(2)) {
                    Some(r) if r.slot.state.status == Status::Joined => true,
                    Some(_) => {
                        d.inject(n, RtAction::Join { target: NodeId(0) });
                        false
                    }
                    None => false,
                })
        });
        assert!(joined, "all 64 nodes joined on 2 reactor threads");

        // Snapshot machinery keeps running at scale.
        let gathered = wait_until(&dep, Duration::from_secs(60), |d| {
            [NodeId(0), NodeId(17), NodeId(42)].iter().all(|&n| {
                d.probe(n, Duration::from_secs(2))
                    .is_some_and(|r| r.stats.snapshots_completed > 0)
            })
        });
        assert!(gathered, "gathers complete at 64 nodes");

        let report = dep.shutdown();
        assert_eq!(report.stats.reactor_threads, 2);
        assert_eq!(report.states.len(), 64, "every node drained and reported");
        let totals = report.stats.totals();
        assert!(totals.snapshots_completed > 0);
        assert!(totals.frames_sent > 0);
    });
}
