//! End-to-end Chord scenario: the stabilized ring from
//! `cb_bench::scenarios::chord_ring` dropped under a live `Simulation` +
//! `Controller`, then churned — the §5.2.2 deployment wired through the
//! whole stack (checkpoint managers → neighborhood snapshots → prediction
//! rounds → reports), not just a standalone search.

use cb_bench::scenarios::chord_ring;
use crystalball_suite::core::{CheckerMode, Controller, ControllerConfig, Mode};
use crystalball_suite::mc::SearchConfig;
use crystalball_suite::model::{ExploreOptions, NodeId, SimDuration, SimTime};
use crystalball_suite::protocols::chord::{self, Action, Chord, ChordBugs};
use crystalball_suite::runtime::{Scenario, ScriptEvent, SimConfig, Simulation, SnapshotRuntime};

const RING: [u32; 6] = [0, 5, 11, 17, 26, 34];

/// Every other ring member resets and rejoins — the churn that makes the
/// as-shipped Chord bugs (C1–C3) predictable from live snapshots.
fn churn() -> Scenario<Chord> {
    let mut sc = Scenario::new();
    for (i, &n) in RING.iter().enumerate() {
        if i % 2 == 1 {
            sc = sc.at(
                SimTime::ZERO + SimDuration::from_secs(20 + 11 * i as u64),
                ScriptEvent::Reset {
                    node: NodeId(n),
                    notify: true,
                },
            );
            sc = sc.at(
                SimTime::ZERO + SimDuration::from_secs(25 + 11 * i as u64),
                ScriptEvent::Action {
                    node: NodeId(n),
                    action: Action::Join { target: NodeId(0) },
                },
            );
        }
    }
    sc
}

fn run(checker: CheckerMode, seed: u64) -> Simulation<Chord, Controller<Chord>> {
    let (proto, ring) = chord_ring(&RING, ChordBugs::as_shipped());
    let controller = Controller::new(
        proto.clone(),
        chord::properties::all(),
        ControllerConfig {
            mode: Mode::DeepOnlineDebugging,
            checker,
            search: SearchConfig {
                max_states: Some(15_000),
                max_depth: Some(6),
                // The Fig. 10 scenario needs resets and spontaneous
                // connection errors in the search space.
                explore: ExploreOptions {
                    resets: true,
                    peer_errors: true,
                    drops: false,
                },
                ..SearchConfig::default()
            },
            ..ControllerConfig::default()
        },
    );
    let mut sim = Simulation::from_state(
        proto,
        ring,
        chord::properties::all(),
        controller,
        SimConfig {
            seed,
            snapshots: Some(SnapshotRuntime {
                checkpoint_interval: SimDuration::from_secs(5),
                gather_interval: SimDuration::from_secs(5),
                ..SnapshotRuntime::default()
            }),
            ..SimConfig::default()
        },
    );
    sim.load_scenario(churn());
    sim.run_for(SimDuration::from_secs(120));
    sim
}

#[test]
fn chord_ring_deep_online_debugging_end_to_end() {
    let sim = run(CheckerMode::Synchronous, 23);
    // The whole pipeline carried weight: periodic gathers produced
    // consistent snapshots, snapshots fed prediction rounds, and the
    // checker reported future inconsistencies of the as-shipped bugs.
    assert!(
        sim.stats.snapshots_completed > 20,
        "gathers completed: {}",
        sim.stats.snapshots_completed
    );
    assert!(sim.stats.snapshot_bytes_sent > 0);
    assert!(
        sim.hook.stats.mc_runs > 10,
        "prediction rounds ran: {}",
        sim.hook.stats.mc_runs
    );
    assert!(
        sim.hook.stats.predictions > 0,
        "future inconsistencies predicted: {:?}",
        sim.hook.stats
    );
    let report = &sim.hook.reports[0];
    assert!(report.depth > 0, "prediction looked into the future");
    assert!(
        !report.scenario.is_empty(),
        "report carries the event-path walk-through"
    );
    // Debugging mode never interferes with the live run.
    assert_eq!(sim.hook.installed_filters(), 0);
    // Nothing left dangling on the (synchronous) checker.
    assert_eq!(sim.hook.pending_predictions(), 0);
}

/// The same deployment on the sharded background pool: rounds check off
/// the simulation thread, diff-shipped, and still find the inconsistencies.
#[test]
fn chord_ring_predicts_on_sharded_pool_too() {
    let mut sim = run(CheckerMode::Sharded { shards: 2 }, 23);
    sim.hook.drain_predictions(
        SimTime::ZERO + SimDuration::from_secs(120),
        std::time::Duration::from_secs(120),
    );
    assert_eq!(sim.hook.pending_predictions(), 0, "pool drained");
    assert!(
        sim.hook.stats.mc_runs > 10,
        "rounds completed in the background: {:?}",
        sim.hook.stats
    );
    assert!(
        sim.hook.stats.predictions > 0,
        "sharded pool also predicts: {:?}",
        sim.hook.stats
    );
    let wire = sim.hook.checker_wire_stats().expect("pool backend");
    assert!(
        wire.shipped_bytes < wire.raw_bytes,
        "diff shipping beat full clones: {} vs {}",
        wire.shipped_bytes,
        wire.raw_bytes
    );
}
