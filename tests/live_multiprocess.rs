//! Cross-process deployment smoke test: one deployment spanning two OS
//! processes. The parent serves the address registry (and hosts the
//! checker plus nodes 0–1); the child process joins via `--join`-style
//! remote addressing (`DeploymentBuilder::join`) and hosts nodes 2–3.
//! The overlay must form *across* the process boundary — the loopback
//! assumption of PR 5 (every peer shares one `Arc<Registry>`) is gone.
//!
//! Child-process mechanics: the test binary re-invokes itself with
//! `CB_LIVE_CHILD_JOIN=<registry addr>` set, filtering to the child
//! entry test, which is a no-op in normal runs.

use std::process::{Command, Stdio};
use std::sync::{mpsc, Mutex, MutexGuard, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

use crystalball_suite::live::{
    live_checker_config, wait_until, DeploymentBuilder, LiveConfig, LiveNodeConfig,
};
use crystalball_suite::model::NodeId;
use crystalball_suite::protocols::randtree::{self, Action as RtAction, RandTree, RandTreeBugs};

const CHILD_ENV: &str = "CB_LIVE_CHILD_JOIN";

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn with_watchdog<T: Send + 'static>(
    limit: Duration,
    name: &str,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = thread::Builder::new()
        .name(format!("watchdog-{name}"))
        .spawn(move || {
            let _ = tx.send(f());
        })
        .expect("spawn watchdog body");
    let deadline = Instant::now() + limit;
    loop {
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(v) => {
                let _ = handle.join();
                return v;
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if handle.is_finished() {
                    if let Err(payload) = handle.join() {
                        std::panic::resume_unwind(payload);
                    }
                    panic!("{name}: body exited without a result");
                }
                if Instant::now() >= deadline {
                    panic!("{name}: wedged — did not finish within {limit:?}");
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                if let Err(payload) = handle.join() {
                    std::panic::resume_unwind(payload);
                }
                panic!("{name}: body exited without a result");
            }
        }
    }
}

fn node_config() -> LiveNodeConfig {
    LiveNodeConfig {
        checkpoint_interval: Duration::from_millis(150),
        gather_interval: Duration::from_millis(250),
        gather_timeout: Duration::from_millis(600),
        time_scale: 0.02,
        ..LiveNodeConfig::default()
    }
}

fn proto() -> RandTree {
    RandTree::new(2, vec![NodeId(0)], RandTreeBugs::none())
}

/// The parent half: serve the registry, host nodes 0–1 and the checker,
/// spawn the child process, and observe a cross-process join land.
#[test]
fn deployment_spans_two_processes() {
    if std::env::var(CHILD_ENV).is_ok() {
        // This *is* the child re-invocation running the whole filter set;
        // only the child entry should do work there.
        return;
    }
    let _serial = serial();
    with_watchdog(Duration::from_secs(120), "two-process", || {
        let config = LiveConfig {
            seed: 21,
            node: node_config(),
            checker: live_checker_config(2_000, 4, 1),
            ..LiveConfig::default()
        };
        let dep = DeploymentBuilder::new(proto(), randtree::properties::all())
            .nodes(&[NodeId(0), NodeId(1)])
            .config(config)
            .serve_registry("127.0.0.1:0".parse().unwrap())
            .boot()
            .expect("boot parent half");
        let reg_addr = dep.registry_addr().expect("registry served");

        // Stand the root up before the child's joiners arrive.
        dep.inject(NodeId(0), RtAction::Join { target: NodeId(0) });
        wait_until(&dep, Duration::from_secs(20), |d| {
            d.probe(NodeId(0), Duration::from_secs(2))
                .is_some_and(|r| r.slot.state.status == randtree::Status::Joined)
        });
        dep.inject(NodeId(1), RtAction::Join { target: NodeId(0) });

        let exe = std::env::current_exe().expect("current test binary");
        let mut child = Command::new(exe)
            .args(["child_process_hosts_joined_nodes", "--exact", "--nocapture"])
            .env(CHILD_ENV, reg_addr.to_string())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn child process");

        // The cross-process join: some parent-side node adopts a child
        // the parent process does not host.
        let remote = [NodeId(2), NodeId(3)];
        let adopted = wait_until(&dep, Duration::from_secs(60), |d| {
            [NodeId(0), NodeId(1)].iter().any(|&n| {
                d.probe(n, Duration::from_secs(2))
                    .is_some_and(|r| r.slot.state.children.iter().any(|c| remote.contains(c)))
            })
        });

        // Reap the child before asserting, so a failure can't leak it.
        let deadline = Instant::now() + Duration::from_secs(60);
        let status = loop {
            match child.try_wait().expect("wait child") {
                Some(status) => break Some(status),
                None if Instant::now() >= deadline => {
                    let _ = child.kill();
                    let _ = child.wait();
                    break None;
                }
                None => thread::sleep(Duration::from_millis(100)),
            }
        };

        assert!(
            adopted,
            "a node hosted by the child process joined the parent's tree"
        );
        let status = status.expect("child process wedged past its deadline");
        assert!(status.success(), "child process exited cleanly: {status:?}");

        let report = dep.shutdown();
        let totals = report.stats.totals();
        assert!(
            totals.service_delivered > 0,
            "cross-process service traffic flowed"
        );
    });
}

/// The child half: joins the parent's registry and hosts nodes 2–3. A
/// no-op unless re-invoked by the parent with `CB_LIVE_CHILD_JOIN` set.
#[test]
fn child_process_hosts_joined_nodes() {
    let Ok(addr) = std::env::var(CHILD_ENV) else {
        return;
    };
    let server = addr.parse().expect("registry addr");
    let config = LiveConfig {
        seed: 22,
        node: node_config(),
        checker: live_checker_config(2_000, 4, 1),
        ..LiveConfig::default()
    };
    let mut dep = DeploymentBuilder::new(proto(), randtree::properties::all())
        .nodes(&[NodeId(2), NodeId(3)])
        .config(config)
        .join(server)
        .boot()
        .expect("boot child half");
    for n in [NodeId(2), NodeId(3)] {
        dep.inject(n, RtAction::Join { target: NodeId(0) });
    }
    // Re-kick stragglers until both child-hosted nodes are in the tree
    // (joins race the parent-side tree's reshaping).
    wait_until(&dep, Duration::from_secs(45), |d| {
        [NodeId(2), NodeId(3)]
            .iter()
            .all(|&n| match d.probe(n, Duration::from_secs(2)) {
                Some(r) if r.slot.state.status == randtree::Status::Joined => true,
                Some(_) => {
                    d.inject(n, RtAction::Join { target: NodeId(0) });
                    false
                }
                None => false,
            })
    });
    // Keep serving the overlay briefly so the parent observes the join.
    dep.run_for(Duration::from_secs(4));
    let report = dep.shutdown();
    let joined = report
        .states
        .values()
        .filter(|s| s.state.status == randtree::Status::Joined)
        .count();
    assert!(joined >= 1, "child-hosted nodes joined across processes");
}
