//! Equivalence of the checker backends: the sharded background
//! `CheckerPool` (diff-shipped submissions, per-node shard affinity,
//! shared worker pool) must produce exactly the same predicted violations
//! and installed filters as the synchronous inline backend — on RandTree
//! and on Paxos, at 2 and 4 shards.
//!
//! This is the bar the sharded refactor has to clear: sharding and diff
//! shipping are transport changes, not semantic ones.
//!
//! The CI determinism matrix drives this through an env loop:
//! `CB_EQ_WORKERS` (comma list, default `1,4`) selects the worker counts
//! the parallel-engine leg runs at, and `CB_EQ_SEED` (default `1213`)
//! varies the second-submission state drift each scenario exercises the
//! diff-shipping path with.

use std::collections::BTreeSet;
use std::time::Duration;

use crystalball_suite::core::{CheckerMode, Controller, ControllerConfig, Mode};
use crystalball_suite::mc::{Engine, ParallelConfig, SearchConfig};
use crystalball_suite::model::{
    apply_event, Event, ExploreOptions, GlobalState, NodeId, Protocol, SimDuration, SimTime,
};
use crystalball_suite::protocols::paxos::{self, PaxosBugs};
use crystalball_suite::protocols::randtree::{self, RandTreeBugs};

use cb_bench::scenarios::{paxos_near_violation, randtree_fig2};

/// Everything the two backends must agree on after a submission sequence:
/// the predicted violations and the final installed filter set.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    violations: BTreeSet<(u32, String, String, usize)>,
    filters: BTreeSet<(u32, String)>,
    predictions: u64,
    filters_installed: u64,
}

fn outcome_of<P: Protocol>(ctl: &Controller<P>) -> Outcome {
    Outcome {
        violations: ctl
            .reports
            .iter()
            .map(|r| {
                (
                    r.node.0,
                    r.violation.property.to_string(),
                    r.scenario.clone(),
                    r.depth,
                )
            })
            .collect(),
        filters: ctl
            .active_filters()
            .into_iter()
            .map(|(owner, f)| (owner.0, f.to_string()))
            .collect(),
        predictions: ctl.stats.predictions,
        filters_installed: ctl.stats.filters_installed,
    }
}

/// Runs the same per-node round submissions against one backend and
/// returns the comparable outcome. Rounds are submitted for every node of
/// the snapshot (so ≥2 shards actually split the work), then a mutated
/// state is submitted again per node to exercise the diff-shipping path
/// with real patches.
fn drive<P, F>(
    proto: &P,
    props: crystalball_suite::model::PropertySet<P>,
    search: &SearchConfig,
    start: &GlobalState<P>,
    mutate: &F,
    checker: CheckerMode,
    engine: Engine,
) -> Outcome
where
    P: Protocol,
    F: Fn(&mut GlobalState<P>),
{
    let mut ctl = Controller::new(
        proto.clone(),
        props,
        ControllerConfig {
            mode: Mode::ExecutionSteering,
            checker,
            engine,
            mc_latency: SimDuration::from_millis(500),
            search: search.clone(),
            ..ControllerConfig::default()
        },
    );
    let nodes: Vec<NodeId> = start.nodes.keys().copied().collect();
    for (i, &node) in nodes.iter().enumerate() {
        ctl.run_round(SimTime(i as u64), node, start);
    }
    let mut changed = start.clone();
    mutate(&mut changed);
    for (i, &node) in nodes.iter().enumerate() {
        ctl.run_round(SimTime(100 + i as u64), node, &changed);
    }
    // Background/sharded backends finish asynchronously; synchronous is a
    // no-op here.
    ctl.drain_predictions(SimTime(1_000), Duration::from_secs(300));
    assert_eq!(ctl.pending_predictions(), 0, "all rounds drained");
    let wire = ctl.checker_wire_stats();
    if let Some(wire) = wire {
        // Two identical-then-patched submissions per node: diff shipping
        // must beat full-clone submission bytes.
        assert!(
            wire.shipped_bytes < wire.raw_bytes,
            "diff-shipped {} >= full-clone {}",
            wire.shipped_bytes,
            wire.raw_bytes
        );
        assert_eq!(wire.states as usize, 2 * nodes.len());
    }
    outcome_of(&ctl)
}

fn assert_backends_agree<P, F>(
    proto: P,
    props: fn() -> crystalball_suite::model::PropertySet<P>,
    search: SearchConfig,
    start: GlobalState<P>,
    mutate: F,
) -> Outcome
where
    P: Protocol,
    F: Fn(&mut GlobalState<P>),
{
    let sync = drive(
        &proto,
        props(),
        &search,
        &start,
        &mutate,
        CheckerMode::Synchronous,
        Engine::Sequential,
    );
    assert!(
        sync.predictions > 0,
        "scenario must actually predict something: {sync:?}"
    );
    for shards in [2usize, 4] {
        let sharded = drive(
            &proto,
            props(),
            &search,
            &start,
            &mutate,
            CheckerMode::Sharded { shards },
            Engine::Sequential,
        );
        assert_eq!(
            sync, sharded,
            "sharded pool ({shards} shards) diverged from the synchronous backend"
        );
    }
    // The heaviest concurrency shape — multiple shard threads each
    // opening replay scopes plus the streamed engine's per-job tasks and
    // merge coordinators, all multiplexed on one shared WorkerPool —
    // must still reproduce the sequential-synchronous outcome bit for
    // bit, at every worker count of the matrix.
    for workers in cb_bench::matrix::workers() {
        let sharded_parallel = drive(
            &proto,
            props(),
            &search,
            &start,
            &mutate,
            CheckerMode::Sharded { shards: 2 },
            Engine::Parallel(ParallelConfig {
                workers,
                ..ParallelConfig::default()
            }),
        );
        assert_eq!(
            sync, sharded_parallel,
            "sharded pool + parallel engine ({workers} workers) diverged \
             from the synchronous backend"
        );
    }
    sync
}

#[test]
fn sharded_pool_matches_synchronous_on_randtree() {
    let (proto, gs) = randtree_fig2(RandTreeBugs::only("R1"));
    let search = SearchConfig {
        max_states: Some(30_000),
        max_depth: Some(7),
        explore: ExploreOptions::default(),
        ..SearchConfig::default()
    };
    // The seed picks which member's recovery timer became schedulable —
    // a small, realistic state drift that differs per matrix leg.
    let drifted = [NodeId(9), NodeId(13), NodeId(21)][cb_bench::matrix::seed() as usize % 3];
    let sync = assert_backends_agree(proto, randtree::properties::all, search, gs, move |gs| {
        let s = &mut gs.slot_mut(drifted).unwrap().state;
        s.recovery_scheduled = false;
    });
    assert!(
        !sync.filters.is_empty(),
        "steering installs filters in the Fig. 2 scenario"
    );
}

#[test]
fn sharded_pool_matches_synchronous_on_paxos() {
    let (proto, gs) = paxos_near_violation(PaxosBugs::only("P1"));
    let search = SearchConfig {
        max_states: Some(30_000),
        max_depth: Some(7),
        explore: ExploreOptions::minimal(),
        ..SearchConfig::default()
    };
    let mutator_proto = proto.clone();
    // The seed decides how many more round-2 messages the later snapshot
    // has seen delivered, so each matrix leg drifts differently.
    let extra_deliveries = 1 + cb_bench::matrix::seed() as usize % 2;
    let sync = assert_backends_agree(proto, paxos::properties::all, search, gs, move |gs| {
        for _ in 0..extra_deliveries {
            if !gs.inflight.is_empty() {
                apply_event(&mutator_proto, gs, &Event::Deliver { index: 0 });
            }
        }
    });
    assert!(
        sync.violations
            .iter()
            .any(|(_, prop, _, _)| prop == "AtMostOneChosen"),
        "the Fig. 14 double choice was predicted: {sync:?}"
    );
}
