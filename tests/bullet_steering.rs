//! End-to-end Bullet' scenario: a mesh dissemination deployment dropped
//! under a live `Simulation` + `Controller` — the §5.2.3 system wired
//! through the whole stack (checkpoint managers → neighborhood snapshots
//! → prediction rounds → reports), not just a standalone search. Closes
//! the ROADMAP scenario-diversity item for Bullet'.
//!
//! The deployment carries the paper's original MACEDON bug (B1): once
//! the per-receiver transport window fills, the sender's next diff timer
//! clears the shadow file map and blocks are lost forever
//! (`DiffCoverage`). From clean live snapshots, consequence prediction
//! sees that future before the deployment reaches it.

use crystalball_suite::core::{CheckerMode, Controller, ControllerConfig, Mode};
use crystalball_suite::mc::SearchConfig;
use crystalball_suite::model::{ExploreOptions, GlobalState, NodeId, SimDuration, SimTime};
use crystalball_suite::protocols::bullet::{self, Bullet, BulletBugs};
use crystalball_suite::runtime::{SimConfig, Simulation, SnapshotRuntime};

/// A 6-node mesh (source + 5 receivers, fan-in 2) distributing a file
/// slowly enough that the dissemination is still in flight across many
/// snapshot gathers — the regime where prediction has a future to see.
fn mesh(bugs: BulletBugs) -> (Bullet, GlobalState<Bullet>) {
    let nodes: Vec<NodeId> = (0..6).map(NodeId).collect();
    let mut proto = Bullet::with_mesh(&nodes, 2, 40, bugs);
    proto.diff_period = SimDuration::from_secs(2);
    proto.request_period = SimDuration::from_secs(1);
    let gs = GlobalState::init(&proto, nodes.clone());
    (proto, gs)
}

fn run(checker: CheckerMode, seed: u64) -> Simulation<Bullet, Controller<Bullet>> {
    let (proto, gs) = mesh(BulletBugs::only("B1"));
    let controller = Controller::new(
        proto.clone(),
        bullet::properties::all(),
        ControllerConfig {
            mode: Mode::DeepOnlineDebugging,
            checker,
            search: SearchConfig {
                max_states: Some(12_000),
                max_depth: Some(6),
                explore: ExploreOptions::minimal(),
                ..SearchConfig::default()
            },
            ..ControllerConfig::default()
        },
    );
    let mut sim = Simulation::from_state(
        proto,
        gs,
        bullet::properties::all(),
        controller,
        SimConfig {
            seed,
            snapshots: Some(SnapshotRuntime {
                checkpoint_interval: SimDuration::from_secs(3),
                gather_interval: SimDuration::from_secs(3),
                ..SnapshotRuntime::default()
            }),
            ..SimConfig::default()
        },
    );
    // No scripted scenario: Bullet' drives itself — the periodic diff and
    // request timers are the whole workload, and they are exactly what
    // trips the B1/B2 window-refusal path.
    sim.run_for(SimDuration::from_secs(60));
    sim
}

#[test]
fn bullet_mesh_deep_online_debugging_end_to_end() {
    let sim = run(CheckerMode::Synchronous, 17);
    // The whole pipeline carried weight: periodic gathers produced
    // consistent snapshots, snapshots fed prediction rounds, and the
    // checker reported the shadow-map loss ahead of time.
    assert!(
        sim.stats.snapshots_completed > 5,
        "gathers completed: {}",
        sim.stats.snapshots_completed
    );
    assert!(sim.stats.snapshot_bytes_sent > 0);
    assert!(
        sim.hook.stats.mc_runs > 5,
        "prediction rounds ran: {}",
        sim.hook.stats.mc_runs
    );
    assert!(
        sim.hook.stats.predictions > 0,
        "future inconsistencies predicted: {:?}",
        sim.hook.stats
    );
    let report = &sim.hook.reports[0];
    assert_eq!(
        report.violation.property, "DiffCoverage",
        "the B1 shadow-clearing loss is what prediction surfaces"
    );
    assert!(report.depth > 0, "prediction looked into the future");
    assert!(
        !report.scenario.is_empty(),
        "report carries the event-path walk-through"
    );
    // Debugging mode never interferes with the live run.
    assert_eq!(sim.hook.installed_filters(), 0);
    // Nothing left dangling on the (synchronous) checker.
    assert_eq!(sim.hook.pending_predictions(), 0);
}

/// The same deployment on the sharded background pool: rounds check off
/// the simulation thread, diff-shipped, and still find the loss.
#[test]
fn bullet_mesh_predicts_on_sharded_pool_too() {
    let mut sim = run(CheckerMode::Sharded { shards: 2 }, 17);
    sim.hook.drain_predictions(
        SimTime::ZERO + SimDuration::from_secs(60),
        std::time::Duration::from_secs(120),
    );
    assert_eq!(sim.hook.pending_predictions(), 0, "pool drained");
    assert!(
        sim.hook.stats.mc_runs > 5,
        "rounds completed in the background: {:?}",
        sim.hook.stats
    );
    assert!(
        sim.hook.stats.predictions > 0,
        "sharded pool also predicts: {:?}",
        sim.hook.stats
    );
    let wire = sim.hook.checker_wire_stats().expect("pool backend");
    assert!(
        wire.shipped_bytes < wire.raw_bytes,
        "diff shipping beat full clones: {} vs {}",
        wire.shipped_bytes,
        wire.raw_bytes
    );
}

/// Control: with the corrected protocol the same deployment predicts no
/// violations — the predictions above are the bugs, not noise.
#[test]
fn bullet_mesh_fixed_protocol_predicts_nothing() {
    let (proto, gs) = mesh(BulletBugs::none());
    let controller = Controller::new(
        proto.clone(),
        bullet::properties::all(),
        ControllerConfig {
            mode: Mode::DeepOnlineDebugging,
            checker: CheckerMode::Synchronous,
            search: SearchConfig {
                max_states: Some(12_000),
                max_depth: Some(6),
                explore: ExploreOptions::minimal(),
                ..SearchConfig::default()
            },
            ..ControllerConfig::default()
        },
    );
    let mut sim = Simulation::from_state(
        proto,
        gs,
        bullet::properties::all(),
        controller,
        SimConfig {
            seed: 17,
            snapshots: Some(SnapshotRuntime {
                checkpoint_interval: SimDuration::from_secs(3),
                gather_interval: SimDuration::from_secs(3),
                ..SnapshotRuntime::default()
            }),
            ..SimConfig::default()
        },
    );
    sim.run_for(SimDuration::from_secs(60));
    assert!(sim.hook.stats.mc_runs > 5, "rounds still ran");
    assert_eq!(
        sim.hook.stats.predictions, 0,
        "fixed protocol is clean: {:?}",
        sim.hook.stats
    );
    assert_eq!(sim.stats.violating_states, 0);
}
