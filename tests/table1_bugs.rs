//! Integration test: every Table-1 inconsistency (plus the two injected
//! Paxos bugs) is (a) predictable by consequence prediction from a live
//! state when the bug flag is on, and (b) absent when the protocol is
//! fixed — the cross-crate backbone of the reproduction.

use crystalball_suite::mc::{find_consequences, SearchConfig, SearchOutcome};
use crystalball_suite::model::{
    apply_event, Event, ExploreOptions, GlobalState, NodeId, PropertySet, Protocol,
};
use crystalball_suite::protocols::bullet::{self, Bullet, BulletBugs};
use crystalball_suite::protocols::chord::{self, Chord, ChordBugs};
use crystalball_suite::protocols::paxos::{self, Paxos, PaxosBugs};
use crystalball_suite::protocols::randtree::{self, RandTree, RandTreeBugs};

fn settle<P: Protocol>(proto: &P, gs: &mut GlobalState<P>) {
    let mut n = 0;
    while !gs.inflight.is_empty() {
        apply_event(proto, gs, &Event::Deliver { index: 0 });
        n += 1;
        assert!(n < 5_000, "did not settle");
    }
}

fn search<P: Protocol>(
    proto: &P,
    props: &PropertySet<P>,
    gs: &GlobalState<P>,
    explore: ExploreOptions,
    depth: usize,
) -> SearchOutcome<P> {
    find_consequences(
        proto,
        props,
        gs,
        SearchConfig {
            max_states: Some(150_000),
            max_depth: Some(depth),
            explore,
            ..SearchConfig::default()
        },
    )
}

/// The Fig. 2 live state: n1 root with child n9 and spare capacity; n13 a
/// child of n9 with a sibling entry from departed history. Built through
/// the real join protocol plus the departure of a former root child
/// (consequence prediction starts from live states like this one — the
/// paper's own point is that the interesting history has already happened).
fn randtree_live(bugs: RandTreeBugs) -> (RandTree, GlobalState<RandTree>) {
    let proto = RandTree::new(2, vec![NodeId(1)], bugs);
    let mut gs = GlobalState::init(&proto, [NodeId(1), NodeId(9), NodeId(13), NodeId(21)]);
    // Joins: n1 (root), n9, n21 — root children {9, 21}; n13 is delegated
    // under n9 (the smallest root child).
    for n in [1u32, 9, 21, 13] {
        apply_event(
            &proto,
            &mut gs,
            &Event::Action {
                node: NodeId(n),
                action: randtree::Action::Join { target: NodeId(1) },
            },
        );
        settle(&proto, &mut gs);
    }
    assert!(gs
        .slot(NodeId(9))
        .unwrap()
        .state
        .children
        .contains(&NodeId(13)));
    // n21 departs with RSTs: the root frees a slot; n9 keeps the stale
    // sibling entry (no direct connection to n21, so no RST reaches it).
    apply_event(
        &proto,
        &mut gs,
        &Event::Reset {
            node: NodeId(21),
            notify: true,
        },
    );
    settle(&proto, &mut gs);
    assert_eq!(gs.slot(NodeId(1)).unwrap().state.children.len(), 1);
    (proto, gs)
}

fn randtree_found(bug: &str, depth: usize) -> Option<String> {
    let (proto, gs) = randtree_live(RandTreeBugs::only(bug));
    assert!(
        randtree::properties::all().check(&gs).is_none(),
        "live state itself is clean for {bug}"
    );
    let out = search(
        &proto,
        &randtree::properties::all(),
        &gs,
        ExploreOptions::default(),
        depth,
    );
    out.first().map(|f| f.violation.property.clone())
}

#[test]
fn randtree_r1_update_sibling() {
    // CP explores: n13 resets silently, rejoins via n1 (root has a free
    // slot), UpdateSibling reaches n9 which still lists n13 as a child.
    assert_eq!(
        randtree_found("R1", 5).as_deref(),
        Some("ChildrenSiblingsDisjoint")
    );
}

#[test]
fn randtree_r2_join_reply() {
    // R2's live state: n5 lost its parent and reverted to Init while
    // keeping its subtree {n3}; n3 has independently re-joined the root.
    // CP explores n5's re-join: the JoinReply sibling list contains n3.
    let proto = RandTree::new(2, vec![NodeId(1)], RandTreeBugs::only("R2"));
    let mut gs = GlobalState::init(&proto, [NodeId(1), NodeId(3), NodeId(5)]);
    for n in [1u32, 3] {
        apply_event(
            &proto,
            &mut gs,
            &Event::Action {
                node: NodeId(n),
                action: randtree::Action::Join { target: NodeId(1) },
            },
        );
        settle(&proto, &mut gs);
    }
    {
        let s5 = &mut gs.slot_mut(NodeId(5)).unwrap().state;
        s5.children.insert(NodeId(3)); // kept subtree from before the outage
    }
    assert!(randtree::properties::all().check(&gs).is_none());
    let out = search(
        &proto,
        &randtree::properties::all(),
        &gs,
        ExploreOptions::minimal(),
        4,
    );
    assert_eq!(
        out.first().map(|f| f.violation.property.as_str()),
        Some("ChildrenSiblingsDisjoint")
    );
}

#[test]
fn randtree_r3_new_root() {
    // The Fig. 9 live state: n61 root of {n65, n69}; n9 under n69 (the
    // paper reaches it after 13 steps of history with other designated
    // nodes; we install the checkpointed state, exactly as a snapshot
    // delivers it). CP explores n9's silent reset + rejoin, the root
    // handover, and the NewRoot arriving at n69 which still lists n9 as a
    // child.
    use std::collections::BTreeSet;
    let proto = RandTree::new(2, vec![NodeId(61)], RandTreeBugs::only("R3"));
    let mut gs = GlobalState::init(&proto, [NodeId(9), NodeId(61), NodeId(65), NodeId(69)]);
    {
        let s = &mut gs.slot_mut(NodeId(61)).unwrap().state;
        s.status = randtree::Status::Joined;
        s.root = Some(NodeId(61));
        s.children = BTreeSet::from([NodeId(65), NodeId(69)]);
        s.recovery_scheduled = true;
    }
    for (n, sib) in [(65u32, 69u32), (69, 65)] {
        let s = &mut gs.slot_mut(NodeId(n)).unwrap().state;
        s.status = randtree::Status::Joined;
        s.root = Some(NodeId(61));
        s.parent = Some(NodeId(61));
        s.siblings = BTreeSet::from([NodeId(sib)]);
        s.recovery_scheduled = true;
    }
    gs.slot_mut(NodeId(69)).unwrap().state.children = BTreeSet::from([NodeId(9)]);
    {
        let s = &mut gs.slot_mut(NodeId(9)).unwrap().state;
        s.status = randtree::Status::Joined;
        s.root = Some(NodeId(61));
        s.parent = Some(NodeId(69));
        s.recovery_scheduled = true;
    }
    assert!(randtree::properties::all().check(&gs).is_none());
    let out = search(
        &proto,
        &randtree::properties::all(),
        &gs,
        ExploreOptions::default(),
        7,
    );
    assert_eq!(
        out.first().map(|f| f.violation.property.as_str()),
        Some("RootNotChildOrSibling")
    );
}

#[test]
fn randtree_r4_promotion_siblings() {
    assert_eq!(
        randtree_found("R4", 5).as_deref(),
        Some("RootHasNoSiblings")
    );
}

#[test]
fn randtree_r5_timer() {
    // Live state: n5 has already self-joined (with the buggy path that
    // skipped the timer); CP explores the smaller n3 joining, which makes
    // n5 relinquish the root role and gain a peer — with no timer running.
    let proto = RandTree::new(2, vec![NodeId(5)], RandTreeBugs::only("R5"));
    let mut gs = GlobalState::init(&proto, [NodeId(3), NodeId(5)]);
    apply_event(
        &proto,
        &mut gs,
        &Event::Action {
            node: NodeId(5),
            action: randtree::Action::Join { target: NodeId(5) },
        },
    );
    settle(&proto, &mut gs);
    assert!(randtree::properties::all().check(&gs).is_none());
    let out = search(
        &proto,
        &randtree::properties::all(),
        &gs,
        ExploreOptions::minimal(),
        4,
    );
    assert_eq!(
        out.first().map(|f| f.violation.property.as_str()),
        Some("RecoveryTimerRuns")
    );
}

#[test]
fn randtree_r6_self_sibling() {
    // Under R6 the very first root-accept already misnotifies the joiner,
    // so the clean live state is the freshly bootstrapped root; CP
    // predicts the violation for the next join.
    let proto = RandTree::new(2, vec![NodeId(1)], RandTreeBugs::only("R6"));
    let mut gs = GlobalState::init(&proto, [NodeId(1), NodeId(9)]);
    apply_event(
        &proto,
        &mut gs,
        &Event::Action {
            node: NodeId(1),
            action: randtree::Action::Join { target: NodeId(1) },
        },
    );
    settle(&proto, &mut gs);
    assert!(randtree::properties::all().check(&gs).is_none());
    let out = search(
        &proto,
        &randtree::properties::all(),
        &gs,
        ExploreOptions::minimal(),
        4,
    );
    assert_eq!(
        out.first().map(|f| f.violation.property.as_str()),
        Some("NotOwnPeer")
    );
}

#[test]
fn randtree_r7_promotion_parent() {
    // A two-node tree: CP explores the root's notifying reset; the child
    // promotes itself but keeps the dead parent pointer under R7.
    let proto = RandTree::new(2, vec![NodeId(1)], RandTreeBugs::only("R7"));
    let mut gs = GlobalState::init(&proto, [NodeId(1), NodeId(9)]);
    for n in [1u32, 9] {
        apply_event(
            &proto,
            &mut gs,
            &Event::Action {
                node: NodeId(n),
                action: randtree::Action::Join { target: NodeId(1) },
            },
        );
        settle(&proto, &mut gs);
    }
    assert!(randtree::properties::all().check(&gs).is_none());
    let out = search(
        &proto,
        &randtree::properties::all(),
        &gs,
        ExploreOptions::default(),
        4,
    );
    assert_eq!(
        out.first().map(|f| f.violation.property.as_str()),
        Some("RootHasNoParent")
    );
}

#[test]
fn randtree_fixed_is_clean_at_bug_depths() {
    let (proto, gs) = randtree_live(RandTreeBugs::none());
    let out = search(
        &proto,
        &randtree::properties::all(),
        &gs,
        ExploreOptions::default(),
        5,
    );
    assert!(
        out.is_clean(),
        "fixed RandTree has no violation within depth 5: {}",
        out.first().map(|f| f.scenario()).unwrap_or_default()
    );
}

/// A live Chord ring of four nodes.
fn chord_live(bugs: ChordBugs) -> (Chord, GlobalState<Chord>) {
    let proto = Chord::new(vec![NodeId(1)], bugs);
    let mut gs = GlobalState::init(&proto, [NodeId(1), NodeId(5), NodeId(9), NodeId(12)]);
    for n in [1u32, 5, 9, 12] {
        apply_event(
            &proto,
            &mut gs,
            &Event::Action {
                node: NodeId(n),
                action: chord::Action::Join { target: NodeId(1) },
            },
        );
        settle(&proto, &mut gs);
    }
    for _ in 0..4 {
        for n in [1u32, 5, 9, 12] {
            apply_event(
                &proto,
                &mut gs,
                &Event::Action {
                    node: NodeId(n),
                    action: chord::Action::Stabilize,
                },
            );
            settle(&proto, &mut gs);
        }
    }
    (proto, gs)
}

#[test]
fn chord_c1_pred_self() {
    let (proto, gs) = chord_live(ChordBugs::only("C1"));
    assert!(chord::properties::all().check(&gs).is_none());
    let out = search(
        &proto,
        &chord::properties::all(),
        &gs,
        ExploreOptions {
            resets: true,
            peer_errors: true,
            drops: false,
        },
        6,
    );
    let f = out.first().expect("C1 predicted");
    assert_eq!(f.violation.property, "PredSelfImpliesSuccSelf");
}

#[test]
fn chord_c2_ordering() {
    // The Fig. 11 live state: Ai-1 and Ai-2 joined Ai concurrently with
    // identical FindPredReply information (the paper's live prefix); CP
    // then discovers the stabilize continuation, exactly as in §5.2.2:
    // "In this state, consequence prediction discovers the following
    // subsequent actions."
    let proto = Chord::new(vec![NodeId(9)], ChordBugs::only("C2"));
    let mut gs = GlobalState::init(&proto, [NodeId(3), NodeId(5), NodeId(9)]);
    apply_event(
        &proto,
        &mut gs,
        &Event::Action {
            node: NodeId(9),
            action: chord::Action::Join { target: NodeId(9) },
        },
    );
    for n in [5u32, 3] {
        apply_event(
            &proto,
            &mut gs,
            &Event::Action {
                node: NodeId(n),
                action: chord::Action::Join { target: NodeId(9) },
            },
        );
    }
    // Deliver the two FindPreds, the two identical replies, then the two
    // UpdatePreds with Ai-2's first.
    let deliver_where =
        |gs: &mut GlobalState<Chord>, pred: &dyn Fn(&cb_model::InFlight<chord::Msg>) -> bool| {
            let i = gs.inflight.iter().position(pred).expect("message");
            apply_event(&proto, gs, &Event::Deliver { index: i });
        };
    let kind = |m: &cb_model::InFlight<chord::Msg>, k: &str| matches!(&m.payload, cb_model::Payload::Msg(msg) if Chord::message_kind(msg) == k);
    deliver_where(&mut gs, &|m| kind(m, "FindPred"));
    deliver_where(&mut gs, &|m| kind(m, "FindPred"));
    deliver_where(&mut gs, &|m| kind(m, "FindPredReply"));
    deliver_where(&mut gs, &|m| kind(m, "FindPredReply"));
    deliver_where(&mut gs, &|m| m.src == NodeId(3) && kind(m, "UpdatePred"));
    deliver_where(&mut gs, &|m| m.src == NodeId(5) && kind(m, "UpdatePred"));
    assert!(chord::properties::all().check(&gs).is_none());
    let out = search(
        &proto,
        &chord::properties::all(),
        &gs,
        ExploreOptions::minimal(),
        4,
    );
    let f = out.first().expect("C2 predicted");
    assert_eq!(f.violation.property, "NodeOrdering");
}

#[test]
fn chord_c3_empty_successors() {
    // The fragile shape is a two-node ring: one peer dying with RSTs
    // leaves the survivor's successor list empty under C3.
    let proto = Chord::new(vec![NodeId(1)], ChordBugs::only("C3"));
    let mut gs = GlobalState::init(&proto, [NodeId(1), NodeId(5)]);
    for n in [1u32, 5] {
        apply_event(
            &proto,
            &mut gs,
            &Event::Action {
                node: NodeId(n),
                action: chord::Action::Join { target: NodeId(1) },
            },
        );
        settle(&proto, &mut gs);
    }
    assert!(chord::properties::all().check(&gs).is_none());
    let out = search(
        &proto,
        &chord::properties::all(),
        &gs,
        ExploreOptions::default(),
        4,
    );
    let f = out.first().expect("C3 predicted");
    assert_eq!(f.violation.property, "SuccessorsNonEmpty");
}

#[test]
fn chord_fixed_is_clean_at_bug_depths() {
    let (proto, gs) = chord_live(ChordBugs::none());
    let out = search(
        &proto,
        &chord::properties::all(),
        &gs,
        ExploreOptions::default(),
        4,
    );
    assert!(
        out.is_clean(),
        "fixed Chord has no violation within depth 4: {}",
        out.first().map(|f| f.scenario()).unwrap_or_default()
    );
}

fn bullet_line(bugs: BulletBugs) -> (Bullet, GlobalState<Bullet>) {
    let mut senders_of = std::collections::BTreeMap::new();
    senders_of.insert(NodeId(1), vec![NodeId(0)]);
    senders_of.insert(NodeId(2), vec![NodeId(1)]);
    let proto = Bullet {
        source: NodeId(0),
        num_blocks: 6,
        block_size: 1024,
        senders_of,
        diff_window: 1,
        max_diff_blocks: 2,
        request_pipeline: 2,
        diff_period: cb_model::SimDuration::from_millis(500),
        request_period: cb_model::SimDuration::from_millis(250),
        bugs,
    };
    let gs = GlobalState::init(&proto, [NodeId(0), NodeId(1), NodeId(2)]);
    (proto, gs)
}

#[test]
fn bullet_b1_shadow_cleared() {
    let (proto, gs) = bullet_line(BulletBugs::only("B1"));
    let out = search(
        &proto,
        &bullet::properties::all(),
        &gs,
        ExploreOptions::minimal(),
        4,
    );
    let f = out.first().expect("B1 predicted");
    assert_eq!(f.violation.property, "DiffCoverage");
}

#[test]
fn bullet_b2_retry_still_clears() {
    let (proto, gs) = bullet_line(BulletBugs::only("B2"));
    let out = search(
        &proto,
        &bullet::properties::all(),
        &gs,
        ExploreOptions::minimal(),
        4,
    );
    let f = out.first().expect("B2 predicted");
    assert_eq!(f.violation.property, "DiffCoverage");
}

#[test]
fn bullet_b3_duplicate_requests() {
    // Live state: n2 peers with two senders; it has already requested
    // block 0 from the source. CP explores the second sender announcing
    // the same block — the buggy handler requests it again.
    let mut senders_of = std::collections::BTreeMap::new();
    senders_of.insert(NodeId(1), vec![NodeId(0)]);
    senders_of.insert(NodeId(2), vec![NodeId(0), NodeId(1)]);
    let proto = Bullet {
        source: NodeId(0),
        num_blocks: 4,
        block_size: 1024,
        senders_of,
        diff_window: 2,
        max_diff_blocks: 2,
        request_pipeline: 2,
        diff_period: cb_model::SimDuration::from_millis(500),
        request_period: cb_model::SimDuration::from_millis(250),
        bugs: BulletBugs::only("B3"),
    };
    let mut gs = GlobalState::init(&proto, [NodeId(0), NodeId(1), NodeId(2)]);
    // Source → n2 diff; n2 eagerly requests blocks 0 and 1 (the requests
    // are still in flight — the Data has not come back yet).
    apply_event(
        &proto,
        &mut gs,
        &Event::Action {
            node: NodeId(0),
            action: bullet::Action::SendDiff { peer: NodeId(2) },
        },
    );
    let diff_idx = gs
        .inflight
        .iter()
        .position(|m| matches!(&m.payload, cb_model::Payload::Msg(bullet::Msg::Diff { .. })))
        .unwrap();
    apply_event(&proto, &mut gs, &Event::Deliver { index: diff_idx });
    assert_eq!(gs.slot(NodeId(2)).unwrap().state.outstanding.len(), 2);
    // Meanwhile n1 fetched block 0 itself, ready to announce it to n2.
    {
        let s1 = &mut gs.slot_mut(NodeId(1)).unwrap().state;
        s1.file_map.insert(0);
        s1.shadow.entry(NodeId(2)).or_default().insert(0);
    }
    assert!(bullet::properties::all().check(&gs).is_none());
    let out = search(
        &proto,
        &bullet::properties::all(),
        &gs,
        ExploreOptions::minimal(),
        3,
    );
    let f = out.first().expect("B3 predicted");
    assert_eq!(f.violation.property, "NoDuplicateRequests");
}

#[test]
fn bullet_fixed_is_clean_at_bug_depths() {
    let (proto, gs) = bullet_line(BulletBugs::none());
    let out = search(
        &proto,
        &bullet::properties::all(),
        &gs,
        ExploreOptions::minimal(),
        4,
    );
    assert!(out.is_clean());
}

#[test]
fn paxos_p1_two_values() {
    let members: Vec<NodeId> = (0..3).map(NodeId).collect();
    let proto = Paxos::new(members.clone(), PaxosBugs::only("P1"));
    // Live state: round 1 completed on {A, B} while C was partitioned.
    let mut gs = GlobalState::init(&proto, members);
    apply_event(
        &proto,
        &mut gs,
        &Event::Action {
            node: NodeId(0),
            action: paxos::Action::Propose,
        },
    );
    // Drop everything touching C, deliver the rest.
    loop {
        if let Some(i) = gs
            .inflight
            .iter()
            .position(|m| m.src == NodeId(2) || m.dst == NodeId(2))
        {
            apply_event(&proto, &mut gs, &Event::Drop { index: i });
            continue;
        }
        if gs.inflight.is_empty() {
            break;
        }
        apply_event(&proto, &mut gs, &Event::Deliver { index: 0 });
    }
    assert!(gs.slot(NodeId(0)).unwrap().state.chosen.contains(&0));
    assert!(paxos::properties::all().check(&gs).is_none());
    // From here, consequence prediction explores B proposing round 2 and
    // predicts the double choice.
    let out = find_consequences(
        &proto,
        &paxos::properties::all(),
        &gs,
        SearchConfig {
            max_states: Some(200_000),
            max_depth: Some(12),
            explore: ExploreOptions::minimal(),
            ..SearchConfig::default()
        },
    );
    let f = out.first().expect("P1 predicted");
    assert_eq!(f.violation.property, "AtMostOneChosen");
}

#[test]
fn paxos_fixed_is_safe_in_same_search() {
    let members: Vec<NodeId> = (0..3).map(NodeId).collect();
    let proto = Paxos::new(members.clone(), PaxosBugs::none());
    let mut gs = GlobalState::init(&proto, members);
    apply_event(
        &proto,
        &mut gs,
        &Event::Action {
            node: NodeId(0),
            action: paxos::Action::Propose,
        },
    );
    loop {
        if let Some(i) = gs
            .inflight
            .iter()
            .position(|m| m.src == NodeId(2) || m.dst == NodeId(2))
        {
            apply_event(&proto, &mut gs, &Event::Drop { index: i });
            continue;
        }
        if gs.inflight.is_empty() {
            break;
        }
        apply_event(&proto, &mut gs, &Event::Deliver { index: 0 });
    }
    let out = find_consequences(
        &proto,
        &paxos::properties::all(),
        &gs,
        SearchConfig {
            max_states: Some(90_000),
            max_depth: Some(12),
            explore: ExploreOptions::minimal(),
            ..SearchConfig::default()
        },
    );
    assert!(
        out.is_clean(),
        "correct Paxos chooses one value in every explored future"
    );
}
