//! Integration tests on the checker invariants the paper's argument rests
//! on (§3.2 "Exploring Consequence Chains"), checked over a grid of system
//! sizes, depth bounds, and bug configurations.
//!
//! (These were property-based tests; with no registry access for a
//! proptest dependency they enumerate their input grids exhaustively
//! instead, which also makes failures reproducible without a shrinker.)

use crystalball_suite::mc::{find_consequences, find_errors, SearchConfig};
use crystalball_suite::model::testproto::{max_pings_property, Ping};
use crystalball_suite::model::{
    apply_event, enumerate_events, Event, ExploreOptions, GlobalState, NodeId, PropertySet,
};
use crystalball_suite::protocols::randtree::{self, RandTree, RandTreeBugs};

fn ping_system(n: u32) -> (Ping, GlobalState<Ping>) {
    let cfg = Ping {
        kick_target: NodeId(0),
        kick_enabled: true,
    };
    let gs = GlobalState::init(&cfg, (0..n).map(NodeId));
    (cfg, gs)
}

/// Consequence prediction never *misses* a violation that exhaustive
/// search finds at depth ≤ 2: "consequence prediction explores all
/// possible transitions from the initial state", and depth-2 paths always
/// start from fresh local states.
#[test]
fn cp_finds_every_shallow_violation() {
    for nodes in 2u32..5 {
        for limit in 1u32..3 {
            let (cfg, gs) = ping_system(nodes);
            let props = PropertySet::new().with(max_pings_property(limit));
            let mk = || SearchConfig {
                explore: ExploreOptions::minimal(),
                max_depth: Some(2),
                max_states: Some(200_000),
                ..SearchConfig::default()
            };
            let bfs = find_errors(&cfg, &props, &gs, mk());
            let cp = find_consequences(&cfg, &props, &gs, mk());
            assert_eq!(bfs.is_clean(), cp.is_clean(), "nodes={nodes} limit={limit}");
            if let (Some(b), Some(c)) = (bfs.first(), cp.first()) {
                assert_eq!(
                    b.depth, c.depth,
                    "same shallowest depth (nodes={nodes} limit={limit})"
                );
            }
        }
    }
}

/// Consequence prediction visits a subset of BFS's budget: never more
/// states at the same depth bound.
#[test]
fn cp_never_explores_more_than_bfs() {
    for nodes in 2u32..5 {
        for depth in 1usize..4 {
            let (cfg, gs) = ping_system(nodes);
            let props = PropertySet::new().with(max_pings_property(u32::MAX));
            let mk = |prune| SearchConfig {
                explore: ExploreOptions::minimal(),
                prune_local: prune,
                max_depth: Some(depth),
                max_states: Some(500_000),
                ..SearchConfig::default()
            };
            let bfs = find_errors(&cfg, &props, &gs, mk(false));
            let cp = find_consequences(&cfg, &props, &gs, mk(true));
            assert!(
                cp.stats.states_visited <= bfs.stats.states_visited,
                "nodes={nodes} depth={depth}: CP {} > BFS {}",
                cp.stats.states_visited,
                bfs.stats.states_visited
            );
        }
    }
}

/// Every reported path replays from the start state to a state that
/// violates the property — predicted violations are real (unlike
/// overapproximating analyses, §6: "bugs identified by consequence search
/// are guaranteed to be real with respect to the model").
#[test]
fn reported_paths_are_sound() {
    for bug in RandTreeBugs::NAMES {
        let proto = RandTree::new(2, vec![NodeId(1)], RandTreeBugs::only(bug));
        let mut gs = GlobalState::init(&proto, [NodeId(1), NodeId(5), NodeId(9)]);
        for n in [1u32, 5, 9] {
            apply_event(
                &proto,
                &mut gs,
                &Event::Action {
                    node: NodeId(n),
                    action: randtree::Action::Join { target: NodeId(1) },
                },
            );
            let mut k = 0;
            while !gs.inflight.is_empty() && k < 500 {
                apply_event(&proto, &mut gs, &Event::Deliver { index: 0 });
                k += 1;
            }
        }
        let props = randtree::properties::all();
        if props.check(&gs).is_some() {
            // The bug manifests during setup; nothing to predict from here.
            continue;
        }
        let out = find_consequences(
            &proto,
            &props,
            &gs,
            SearchConfig {
                max_states: Some(60_000),
                max_depth: Some(6),
                ..SearchConfig::default()
            },
        );
        if let Some(found) = out.first() {
            let mut replay = gs.clone();
            for step in &found.path {
                apply_event(&proto, &mut replay, &step.event);
            }
            assert!(
                props.check(&replay).is_some(),
                "path must reproduce the violation for bug {bug}"
            );
        }
    }
}

/// Event application preserves model sanity: every enumerated event applies
/// without panicking, node count is invariant, and hashing is pure — over
/// seeded pseudo-random walks through the full event space.
#[test]
fn random_walks_keep_the_model_sane() {
    for seed in 0u64..24 {
        let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let (cfg, mut gs) = ping_system(3);
        let nodes_before = gs.node_count();
        for _ in 0..40 {
            let evs = enumerate_events(&cfg, &gs, &ExploreOptions::full());
            if evs.is_empty() {
                break;
            }
            let ev = evs[next() as usize % evs.len()].clone();
            apply_event(&cfg, &mut gs, &ev);
            assert_eq!(gs.node_count(), nodes_before, "seed {seed}");
            assert_eq!(
                gs.state_hash(),
                gs.state_hash(),
                "hashing stays pure (seed {seed})"
            );
        }
    }
}
