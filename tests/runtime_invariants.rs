//! Integration tests over the live runtime: invariants that must hold for
//! *every* seed, scenario, and protocol configuration — checked here over a
//! fixed panel of seeds and sizes.
//!
//! (These were property-based tests; with no registry access for a
//! proptest dependency they run a deterministic seed panel instead.)

use crystalball_suite::core::{Controller, ControllerConfig, Mode};
use crystalball_suite::mc::SearchConfig;
use crystalball_suite::model::{NodeId, SimDuration};
use crystalball_suite::protocols::chord::{self, Chord, ChordBugs};
use crystalball_suite::protocols::randtree::{self, RandTree, RandTreeBugs};
use crystalball_suite::runtime::{NoHook, Scenario, SimConfig, Simulation, SnapshotRuntime};

/// A fixed RandTree under arbitrary churn never violates its safety
/// properties — the "possible corrections" of §5.2.1 actually work.
#[test]
fn fixed_randtree_never_violates() {
    for (seed, n_nodes) in [(3u64, 4u32), (17, 6), (101, 8), (997, 9)] {
        let nodes: Vec<NodeId> = (0..n_nodes).map(NodeId).collect();
        let proto = RandTree::new(2, vec![NodeId(0)], RandTreeBugs::none());
        let mut sim = Simulation::new(
            proto,
            &nodes,
            randtree::properties::all(),
            NoHook,
            SimConfig {
                seed,
                ..SimConfig::default()
            },
        );
        sim.load_scenario(Scenario::churn(
            &nodes,
            |_| randtree::Action::Join { target: NodeId(0) },
            SimDuration::from_secs(20),
            SimDuration::from_secs(90),
            seed,
        ));
        sim.run_for(SimDuration::from_secs(100));
        assert_eq!(
            sim.stats.violating_states, 0,
            "violations in fixed RandTree (seed {seed}): {:?}",
            sim.stats.violations_by_property
        );
    }
}

/// A fixed Chord ring under churn never violates its safety properties.
#[test]
fn fixed_chord_never_violates() {
    for (seed, n_nodes) in [(5u64, 3u32), (42, 5), (311, 7)] {
        let nodes: Vec<NodeId> = (0..n_nodes).map(NodeId).collect();
        let proto = Chord::new(vec![NodeId(0)], ChordBugs::none());
        let mut sim = Simulation::new(
            proto,
            &nodes,
            chord::properties::all(),
            NoHook,
            SimConfig {
                seed,
                ..SimConfig::default()
            },
        );
        sim.load_scenario(Scenario::churn(
            &nodes,
            |_| chord::Action::Join { target: NodeId(0) },
            SimDuration::from_secs(25),
            SimDuration::from_secs(90),
            seed,
        ));
        sim.run_for(SimDuration::from_secs(100));
        assert_eq!(
            sim.stats.violating_states, 0,
            "violations in fixed Chord (seed {seed}): {:?}",
            sim.stats.violations_by_property
        );
    }
}

/// Steering with the ISC never *increases* the number of inconsistent
/// states relative to an uninstrumented run of the same seed — the §3.3
/// safety argument, checked across seeds.
#[test]
fn steering_never_makes_it_worse() {
    for seed in [2u64, 121, 404] {
        let nodes: Vec<NodeId> = (0..6).map(NodeId).collect();
        let proto = RandTree::new(2, vec![NodeId(0)], RandTreeBugs::as_shipped());
        let scenario = || {
            Scenario::churn(
                &nodes,
                |_| randtree::Action::Join { target: NodeId(0) },
                SimDuration::from_secs(15),
                SimDuration::from_secs(60),
                seed,
            )
        };
        let mut base = Simulation::new(
            proto.clone(),
            &nodes,
            randtree::properties::all(),
            NoHook,
            SimConfig {
                seed,
                ..SimConfig::default()
            },
        );
        base.load_scenario(scenario());
        base.run_for(SimDuration::from_secs(70));

        let ctl = Controller::new(
            proto.clone(),
            randtree::properties::all(),
            ControllerConfig {
                mode: Mode::ExecutionSteering,
                mc_latency: SimDuration::from_secs(2),
                search: SearchConfig {
                    max_states: Some(4_000),
                    max_depth: Some(5),
                    ..SearchConfig::default()
                },
                ..ControllerConfig::default()
            },
        );
        let mut steered = Simulation::new(
            proto,
            &nodes,
            randtree::properties::all(),
            ctl,
            SimConfig {
                seed,
                snapshots: Some(SnapshotRuntime {
                    checkpoint_interval: SimDuration::from_secs(5),
                    gather_interval: SimDuration::from_secs(5),
                    ..SnapshotRuntime::default()
                }),
                ..SimConfig::default()
            },
        );
        steered.load_scenario(scenario());
        steered.run_for(SimDuration::from_secs(70));
        assert!(
            steered.stats.violating_states <= base.stats.violating_states,
            "steering made things worse on seed {}: {} vs {}",
            seed,
            steered.stats.violating_states,
            base.stats.violating_states
        );
    }
}

/// Snapshot machinery is conservative: enabling checkpointing changes no
/// protocol outcome (the gather traffic shares links but carries no
/// protocol effects) — join outcomes match with and without it when no
/// hook intervenes.
#[test]
fn snapshots_do_not_perturb_protocol_outcomes() {
    for seed in [1u64, 77, 199] {
        let nodes: Vec<NodeId> = (0..5).map(NodeId).collect();
        let proto = RandTree::new(2, vec![NodeId(0)], RandTreeBugs::none());
        let run = |snapshots: bool| {
            let mut sim = Simulation::new(
                proto.clone(),
                &nodes,
                randtree::properties::all(),
                NoHook,
                SimConfig {
                    seed,
                    snapshots: snapshots.then(SnapshotRuntime::default),
                    ..SimConfig::default()
                },
            );
            for (i, &n) in nodes.iter().enumerate() {
                sim.load_scenario(Scenario::new().at(
                    cb_model::SimTime(i as u64 * 300_000),
                    cb_runtime::ScriptEvent::Action {
                        node: n,
                        action: randtree::Action::Join { target: NodeId(0) },
                    },
                ));
            }
            sim.run_for(SimDuration::from_secs(30));
            nodes
                .iter()
                .map(|n| sim.state(*n).map(|s| s.status == randtree::Status::Joined))
                .collect::<Vec<_>>()
        };
        // Note: checkpoint traffic *does* shift packet timings (it shares
        // the links), so we compare the stable outcome — who joined — not
        // byte-level stats.
        assert_eq!(
            run(false),
            run(true),
            "join outcomes diverged on seed {seed}"
        );
    }
}
