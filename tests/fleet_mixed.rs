//! The mixed-protocol deployment end to end: a RandTree overlay, a Paxos
//! group, and a Bullet' dissemination mesh co-deployed under ONE fleet
//! scheduler, one fault schedule, one shared `WorkerPool`, and one shared
//! `CheckerHost` — the ROADMAP's "mixed-protocol deployment harness"
//! scenario.
//!
//! What must hold (the PR's acceptance bar):
//!
//! * ≥ 3 distinct protocols run side by side under one seeded fault plan
//!   (partitions + churn + link degradation, applied uniformly);
//! * at least one future violation is predicted **from a clean snapshot**
//!   (the prediction lands before the member's live state ever violates)
//!   and steering turns predictions into installed filters — on both the
//!   synchronous and the sharded background checker backends;
//! * the whole run is **byte-identical** across parallel-engine worker
//!   counts for a fixed seed: same fleet trace, same deterministic
//!   `FleetStats` JSON (`CB_EQ_WORKERS` drives the matrix legs, as for
//!   the other determinism suites).

use crystalball_suite::core::{CheckerMode, ControllerConfig, Mode};
use crystalball_suite::fleet::{
    bullet_member, paxos_member, randtree_member, FaultConfig, FaultPlan, Fleet, FleetConfig,
    FleetStats, MemberCommon,
};
use crystalball_suite::mc::{Engine, ParallelConfig, SearchConfig};
use crystalball_suite::model::{ExploreOptions, SimDuration};
use crystalball_suite::protocols::bullet::BulletBugs;
use crystalball_suite::protocols::paxos::PaxosBugs;
use crystalball_suite::protocols::randtree::RandTreeBugs;

const HORIZON_SECS: u64 = 80;

fn engine(workers: usize) -> Engine {
    if workers <= 1 {
        Engine::Sequential
    } else {
        Engine::Parallel(ParallelConfig {
            workers,
            ..ParallelConfig::default()
        })
    }
}

fn controller(
    checker: CheckerMode,
    workers: usize,
    max_states: usize,
    depth: usize,
    minimal: bool,
) -> ControllerConfig {
    ControllerConfig {
        mode: Mode::ExecutionSteering,
        checker,
        engine: engine(workers),
        mc_latency: SimDuration::from_millis(500),
        search: SearchConfig {
            max_states: Some(max_states),
            max_depth: Some(depth),
            explore: if minimal {
                ExploreOptions::minimal()
            } else {
                ExploreOptions::default()
            },
            ..SearchConfig::default()
        },
        ..ControllerConfig::default()
    }
}

/// Builds and runs the three-protocol fleet; returns the trace bytes, the
/// deterministic JSON, and the stats.
fn run_fleet(checker: CheckerMode, workers: usize, seed: u64) -> (String, String, FleetStats) {
    let horizon = SimDuration::from_secs(HORIZON_SECS);
    let mut fleet = Fleet::new(FleetConfig {
        seed,
        duration: horizon,
        drain_interval: SimDuration::from_secs(5),
        checker_lanes: 2,
        pool_threads: workers.max(2) - 1,
    });
    let rt = fleet.runtime().clone();
    fleet.add_member(randtree_member(
        &rt,
        MemberCommon::steering(
            "randtree-overlay",
            seed ^ 0xa1,
            controller(checker, workers, 8_000, 6, false),
        ),
        6,
        RandTreeBugs::only("R1"),
        SimDuration::from_secs(25),
        horizon,
    ));
    fleet.add_member(paxos_member(
        &rt,
        MemberCommon::steering(
            "paxos-group",
            seed ^ 0xb2,
            controller(checker, workers, 12_000, 12, true),
        ),
        PaxosBugs::only("P2"),
        2,
        SimDuration::from_secs(25),
    ));
    fleet.add_member(bullet_member(
        &rt,
        MemberCommon::steering(
            "bullet-mesh",
            seed ^ 0xc3,
            controller(checker, workers, 8_000, 6, true),
        ),
        5,
        30,
        BulletBugs::only("B1"),
    ));
    // One fault schedule for the whole deployment. Partitions are left to
    // the Paxos member's own Fig. 13 script (a fleet-wide heal could
    // splice its rounds); churn and link degradation hit every member
    // uniformly.
    fleet.load_fault_plan(FaultPlan::generate(
        &FaultConfig {
            nodes: 6,
            duration: horizon,
            start_after: SimDuration::from_secs(35),
            partition_mean_gap: None,
            churn_mean_gap: Some(SimDuration::from_secs(40)),
            degrade_mean_gap: Some(SimDuration::from_secs(35)),
            ..FaultConfig::default()
        },
        seed,
    ));
    let stats = fleet.run();
    (fleet.trace().to_string(), stats.deterministic_json(), stats)
}

/// The shared assertions both checker backends must clear.
fn assert_fleet_outcome(stats: &FleetStats, backend: &str) {
    let protos: std::collections::BTreeSet<&str> =
        stats.members.iter().map(|m| m.protocol.as_str()).collect();
    assert_eq!(
        protos.len(),
        3,
        "{backend}: three distinct protocols co-deployed: {protos:?}"
    );
    assert!(
        stats.faults_applied > 0,
        "{backend}: the fault schedule actually fired"
    );
    for m in &stats.members {
        assert!(m.steps > 0, "{backend}: member {} was scheduled", m.name);
        assert!(
            m.mc_runs > 0,
            "{backend}: member {} ran prediction rounds: {m:?}",
            m.name
        );
    }
    assert!(
        stats.predictions() > 0,
        "{backend}: future inconsistencies predicted fleet-wide"
    );
    assert!(
        stats.filters_installed() > 0,
        "{backend}: steering installed corrective filters (avoidance)"
    );
    // "Predicted from clean snapshots": some member's first prediction
    // precedes any live violation it ever suffers.
    let clean = stats.members.iter().any(|m| {
        m.first_prediction_at.is_some()
            && m.first_violation_at
                .is_none_or(|v| m.first_prediction_at.unwrap() < v)
    });
    assert!(
        clean,
        "{backend}: a member predicted before (or without) ever violating: {:?}",
        stats
            .members
            .iter()
            .map(|m| (m.name.clone(), m.first_prediction_at, m.first_violation_at))
            .collect::<Vec<_>>()
    );
}

#[test]
fn mixed_fleet_predicts_and_steers_on_synchronous_backend() {
    let workers = *cb_bench::matrix::workers().first().unwrap_or(&1);
    let (_, _, stats) = run_fleet(CheckerMode::Synchronous, workers, 42);
    assert_fleet_outcome(&stats, "synchronous");
}

#[test]
fn mixed_fleet_predicts_and_steers_on_sharded_backend() {
    let workers = *cb_bench::matrix::workers().first().unwrap_or(&1);
    let (_, _, stats) = run_fleet(CheckerMode::Sharded { shards: 2 }, workers, 42);
    assert_fleet_outcome(&stats, "sharded");
    // The background rounds were diff-shipped over the shared host.
    let (raw, shipped) = stats.wire_bytes();
    assert!(
        shipped > 0 && shipped < raw,
        "diff shipping beat full clones fleet-wide: {shipped} vs {raw}"
    );
}

/// The determinism contract: same `(construction, seed)` ⇒ byte-identical
/// fleet trace and deterministic stats, across every worker count of the
/// CI matrix leg (`CB_EQ_WORKERS`), on both checker backends.
#[test]
fn fleet_trace_byte_identical_across_worker_counts() {
    for (backend, checker) in [
        ("synchronous", CheckerMode::Synchronous),
        ("sharded", CheckerMode::Sharded { shards: 2 }),
    ] {
        let (ref_trace, ref_json, ref_stats) = run_fleet(checker, 1, 42);
        assert!(!ref_trace.is_empty());
        for workers in cb_bench::matrix::workers() {
            if workers == 1 {
                continue;
            }
            let (trace, json, stats) = run_fleet(checker, workers, 42);
            assert_eq!(
                ref_trace, trace,
                "{backend}: fleet trace diverged at {workers} workers"
            );
            assert_eq!(
                ref_json, json,
                "{backend}: deterministic stats diverged at {workers} workers"
            );
            assert_eq!(
                ref_stats.fleet_steps, stats.fleet_steps,
                "{backend}: step counts diverged at {workers} workers"
            );
        }
    }
}
