//! Integration tests for `cb-live`: the CrystalBall loop running outside
//! the simulator — real node threads, real sockets, a checker reachable
//! only by wire.
//!
//! Determinism contract for this scenario class (see
//! `crates/live/ARCHITECTURE.md`): node threads interleave under a real
//! scheduler, so these tests assert **protocol-level safety outcomes and
//! steering effects** — wire-gathered snapshots happened, the checker
//! predicted, filters arrived over the wire, a live handler was blocked —
//! and never byte-level traces. Every wait is a bounded poll
//! (`wait_until`), and every test body runs under a watchdog so a wedged
//! deployment fails the test instead of hanging CI.

use std::sync::{mpsc, Mutex, MutexGuard, OnceLock};
use std::thread;
use std::time::Duration;

use crystalball_suite::live::{
    live_checker_config, paxos_deployment, randtree_deployment, wait_until, LiveConfig,
    LiveDeployment, LiveNodeConfig,
};
use crystalball_suite::model::NodeId;
use crystalball_suite::protocols::paxos::{self, PaxosBugs};
use crystalball_suite::protocols::randtree::{RandTreeBugs, Status};

/// One live deployment at a time: each test boots ~12 threads with
/// wall-clock deadlines; running three deployments concurrently on a
/// small CI host starves them into flaky timeouts. (Poisoning is fine —
/// a failed test must not cascade.)
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` on a helper thread and panics if it has not finished within
/// `limit` — the satellite requirement that a dead peer (or a bug in the
/// drain path) must never wedge a test into the CI timeout.
fn with_watchdog<T: Send + 'static>(
    limit: Duration,
    name: &str,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = thread::Builder::new()
        .name(format!("watchdog-{name}"))
        .spawn(move || {
            let _ = tx.send(f());
        })
        .expect("spawn watchdog body");
    let deadline = std::time::Instant::now() + limit;
    loop {
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(v) => {
                let _ = handle.join();
                return v;
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if handle.is_finished() {
                    // The body panicked: propagate its panic payload so
                    // the real assertion message reaches the test output.
                    if let Err(payload) = handle.join() {
                        std::panic::resume_unwind(payload);
                    }
                    panic!("{name}: body exited without a result");
                }
                if std::time::Instant::now() >= deadline {
                    panic!("{name}: wedged — did not finish within {limit:?}");
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                if let Err(payload) = handle.join() {
                    std::panic::resume_unwind(payload);
                }
                panic!("{name}: body exited without a result");
            }
        }
    }
}

fn fast_node_config() -> LiveNodeConfig {
    LiveNodeConfig {
        checkpoint_interval: Duration::from_millis(80),
        gather_interval: Duration::from_millis(120),
        gather_timeout: Duration::from_millis(350),
        time_scale: 0.02, // 2-sim-second recovery timer -> 40ms wall
        ..LiveNodeConfig::default()
    }
}

/// The headline acceptance test: an 8-node RandTree deployment over
/// loopback TCP completes the full CrystalBall loop — wire-gathered
/// neighborhood snapshot → checker prediction → filter installed over the
/// wire → observable steering on the live node.
///
/// The scenario is the live re-creation of Fig. 2's preconditions: the
/// R1 bug armed, a root with free capacity (a root child dies for good —
/// the checker's consequence prediction then finds "a grandchild resets
/// silently, rejoins the root, the root's `UpdateSibling` lands on a node
/// still holding it as a stale child"), and churn of grandchildren so the
/// predicted message actually flies — into an installed filter.
#[test]
fn live_randtree_full_loop_steers_over_wire() {
    let _serial = serial();
    with_watchdog(Duration::from_secs(150), "full-loop", || {
        let config = LiveConfig {
            seed: 7,
            node: fast_node_config(),
            checker: live_checker_config(8_000, 6, 2),
            ..LiveConfig::default()
        };
        let mut dep = randtree_deployment(8, RandTreeBugs::only("R1"), config)
            .expect("boot 8-node deployment");

        // Phase 1: the overlay forms over real sockets. Under heavy host
        // contention a join can still race the tree's reshaping, so any
        // node found idle in Init is re-kicked (a no-op otherwise).
        let joined = wait_until(&dep, Duration::from_secs(60), |d| {
            d.node_ids()
                .iter()
                .all(|&n| match d.probe(n, Duration::from_secs(2)) {
                    Some(r) if r.slot.state.status == Status::Joined => true,
                    Some(_) => {
                        d.inject(
                            n,
                            crystalball_suite::protocols::randtree::Action::Join {
                                target: NodeId(0),
                            },
                        );
                        false
                    }
                    None => false,
                })
        });
        assert!(joined, "all 8 nodes joined the overlay over TCP");

        // Phase 2: open root capacity — kill a childless root child for
        // good (a full root forwards joins down and never sends the
        // UpdateSibling the Fig. 2 chain rides on).
        let root = dep
            .probe(NodeId(0), Duration::from_secs(5))
            .expect("probe root");
        let root_children: Vec<NodeId> = root.slot.state.children.iter().copied().collect();
        assert!(!root_children.is_empty(), "root has children");
        let mut sacrifice = root_children[0];
        for &c in &root_children {
            if dep
                .probe(c, Duration::from_secs(2))
                .is_some_and(|r| r.slot.state.children.is_empty())
            {
                sacrifice = c;
            }
        }
        dep.kill(sacrifice);

        // Phase 3: wire-gathered snapshots flow to the checker until it
        // predicts the future inconsistency and pushes filters back.
        let predicted = wait_until(&dep, Duration::from_secs(45), |d| {
            d.probe_checker(Duration::from_secs(2))
                .is_some_and(|c| c.predictions > 0 && c.installs_sent > 0)
        });
        let checker = dep.probe_checker(Duration::from_secs(5)).unwrap();
        assert!(
            predicted,
            "checker predicted from wire-gathered snapshots: {checker:?}"
        );
        assert!(checker.submits_received > 0, "submissions arrived by wire");
        // At least one node holds a wire-installed filter at some probe
        // (filters are per-round, so poll rather than expect permanence).
        let installed = wait_until(&dep, Duration::from_secs(30), |d| {
            d.node_ids().iter().any(|&n| {
                d.is_up(n)
                    && d.probe(n, Duration::from_secs(1))
                        .is_some_and(|r| r.stats.installs_received > 0)
            })
        });
        assert!(installed, "filter-install pushes reached live nodes");

        // Phase 4: churn grandchildren so the predicted path actually
        // runs — the rejoin makes the root accept and send UpdateSibling
        // into the installed filter (or the node's own blocked Join
        // handler fires). Poll until a live handler is demonstrably
        // blocked by a wire-installed filter.
        let any_hit = |d: &LiveDeployment<_>| {
            d.node_ids().iter().any(|&n| {
                d.is_up(n)
                    && d.probe(n, Duration::from_secs(1))
                        .is_some_and(|r| r.stats.filter_hits > 0)
            })
        };
        let mut steered = false;
        for _ in 0..15 {
            if any_hit(&dep) {
                steered = true;
                break;
            }
            // Who currently holds a wire-installed *message* filter?
            // (Handler filters do not survive a churn of their holder —
            // a restarted node starts with an empty filter set.)
            let mut holder = None;
            for &n in dep.node_ids() {
                if dep.is_up(n) {
                    if let Some(r) = dep.probe(n, Duration::from_secs(1)) {
                        if r.filters.iter().any(|f| {
                            matches!(f, crystalball_suite::mc::EventFilter::Message { .. })
                        }) {
                            holder = Some(n);
                        }
                    }
                }
            }
            // Churn policy: only ever kill *childless* nodes. Killing a
            // node with children collapses the root→child→grandchild
            // chain the UpdateSibling prediction (and its Message filter)
            // depends on. A childless root child is the best victim (its
            // kill re-frees a root slot, its rejoin refills it and makes
            // the root push UpdateSibling into the holder's filter); a
            // childless grandchild works too when root capacity is open.
            let root_children: Vec<NodeId> = dep
                .probe(NodeId(0), Duration::from_secs(2))
                .map(|r| r.slot.state.children.iter().copied().collect())
                .unwrap_or_default();
            let mut childless_root_child = None;
            let mut childless_leaf = None;
            for n in (1..8u32).map(NodeId) {
                if Some(n) == holder || n == sacrifice || !dep.is_up(n) {
                    continue;
                }
                if let Some(r) = dep.probe(n, Duration::from_secs(1)) {
                    if r.slot.state.children.is_empty() {
                        if root_children.contains(&n) {
                            childless_root_child.get_or_insert(n);
                        } else {
                            childless_leaf.get_or_insert(n);
                        }
                    }
                }
            }
            let Some(v) = childless_root_child.or(childless_leaf) else {
                thread::sleep(Duration::from_millis(200));
                continue;
            };
            dep.kill(v);
            thread::sleep(Duration::from_millis(80));
            dep.restart(v).expect("restart churned node");
            if wait_until(&dep, Duration::from_secs(5), |d| any_hit(d)) {
                steered = true;
                break;
            }
        }

        let report = dep.shutdown();
        let totals = report.stats.totals();
        // The loop ran over the wire, end to end.
        assert!(totals.snapshots_completed > 0, "gathers completed");
        assert!(totals.snap_frames > 0, "snapshot protocol used the wire");
        assert!(totals.submits_sent > 0, "snapshots shipped to the checker");
        assert!(
            report.stats.checker.predictions > 0,
            "checker predicted: {:?}",
            report.stats.checker
        );
        assert!(
            totals.installs_received > 0,
            "filters were installed over the wire: {totals:?}"
        );
        assert!(
            steered || totals.filter_hits > 0,
            "observable steering: a wire-installed filter blocked a live \
             handler (checker={:?}, totals={totals:?})",
            report.stats.checker
        );
        // The JSON surface used by the live_throughput bench is well-formed.
        let json = report.stats.to_json();
        assert!(json.contains("\"bench\": \"live_throughput\""));
        assert!(json.contains("\"predictions\""));
    });
}

/// Satellite: killing a node mid-snapshot-gather must not wedge the
/// requester — the gather times out, fails the dead peer (one retry round
/// if nacked, then gives up), and later gathers keep completing. The
/// partition variant exercises the *silent* black-hole path (frames
/// dropped at the sender, no EOF to observe).
#[test]
fn live_shutdown_mid_gather_does_not_wedge() {
    let _serial = serial();
    with_watchdog(Duration::from_secs(90), "mid-gather", || {
        let config = LiveConfig {
            seed: 11,
            node: LiveNodeConfig {
                checkpoint_interval: Duration::from_millis(60),
                gather_interval: Duration::from_millis(90),
                gather_timeout: Duration::from_millis(250),
                time_scale: 0.02,
                ..LiveNodeConfig::default()
            },
            checker: live_checker_config(2_000, 4, 1),
            ..LiveConfig::default()
        };
        let mut dep = randtree_deployment(4, RandTreeBugs::none(), config).expect("boot");
        let joined = wait_until(&dep, Duration::from_secs(20), |d| {
            d.node_ids().iter().all(|&n| {
                d.probe(n, Duration::from_secs(2))
                    .is_some_and(|r| r.slot.state.status == Status::Joined)
            })
        });
        assert!(joined, "overlay formed");
        // Let snapshot traffic establish.
        let gathered = wait_until(&dep, Duration::from_secs(20), |d| {
            d.probe(NodeId(0), Duration::from_secs(2))
                .is_some_and(|r| r.stats.snapshots_completed >= 2)
        });
        assert!(gathered, "baseline gathers complete");

        // Silent black hole: node 1 stops exchanging frames with everyone
        // mid-everything (sender-side drops — no EOF to observe). Every
        // node that counts n1 among its snapshot neighbors must hit the
        // gather timeout, complete partially, and keep gathering.
        let sum_of = |d: &LiveDeployment<_>, skip: &[NodeId]| {
            let mut timeouts = 0u64;
            let mut completed = 0u64;
            for &n in d.node_ids() {
                if skip.contains(&n) || !d.is_up(n) {
                    continue;
                }
                if let Some(r) = d.probe(n, Duration::from_secs(2)) {
                    timeouts += r.stats.gather_timeouts;
                    completed += r.stats.snapshots_completed;
                }
            }
            (timeouts, completed)
        };
        let skip = [NodeId(1)];
        let (timeouts_before, completed_before) = sum_of(&dep, &skip);
        for &n in &[NodeId(0), NodeId(2), NodeId(3)] {
            dep.set_partitioned(n, NodeId(1), true);
        }
        let survived = wait_until(&dep, Duration::from_secs(40), |d| {
            let (t, c) = sum_of(d, &skip);
            t > timeouts_before && c > completed_before
        });
        assert!(
            survived,
            "partitioned peer: gathers timed out and later gathers completed"
        );
        for &n in &[NodeId(0), NodeId(2), NodeId(3)] {
            dep.set_partitioned(n, NodeId(1), false);
        }

        // Loud death: kill node 2 outright (sockets break). The
        // requesters observe the failure (EOF or timeout) and the rest of
        // the deployment keeps gathering.
        let skip = [NodeId(2)];
        let (_, completed_before) = sum_of(&dep, &skip);
        dep.kill(NodeId(2));
        let survived = wait_until(&dep, Duration::from_secs(40), |d| {
            let (_, c) = sum_of(d, &skip);
            c > completed_before + 2
        });
        assert!(survived, "killed peer: requesters keep gathering");

        // Graceful teardown joins every thread — the watchdog proves no
        // listener thread leaked past shutdown.
        let report = dep.shutdown();
        assert!(report.stats.totals().snapshots_completed > 0);
        assert!(
            !report.states.contains_key(&NodeId(2)),
            "killed, never-restarted node reports no final state"
        );
    });
}

/// A second protocol over the same runtime: a 3-member Paxos group drives
/// real proposal rounds over TCP and reaches a consistent outcome (the
/// protocol-level safety assertion this scenario class uses instead of
/// trace equality).
#[test]
fn live_paxos_reaches_consistent_consensus() {
    let _serial = serial();
    with_watchdog(Duration::from_secs(90), "paxos", || {
        let members: Vec<NodeId> = (0..3).map(NodeId).collect();
        let config = LiveConfig {
            seed: 3,
            node: LiveNodeConfig {
                checkpoint_interval: Duration::from_millis(80),
                gather_interval: Duration::from_millis(120),
                gather_timeout: Duration::from_millis(300),
                time_scale: 0.02,
                ..LiveNodeConfig::default()
            },
            checker: live_checker_config(2_000, 4, 1),
            ..LiveConfig::default()
        };
        let dep = paxos_deployment(&members, PaxosBugs::none(), config).expect("boot paxos");
        // Fire proposals until a value is chosen somewhere.
        let mut chosen = false;
        for _ in 0..10 {
            dep.inject(NodeId(0), paxos::Action::Propose);
            chosen = wait_until(&dep, Duration::from_secs(5), |d| {
                members.iter().any(|&m| {
                    d.probe(m, Duration::from_secs(2))
                        .is_some_and(|r| !r.slot.state.chosen.is_empty())
                })
            });
            if chosen {
                break;
            }
        }
        assert!(chosen, "a proposal round completed over live TCP");
        // Snapshot machinery runs on its own cadence; wait for it before
        // tearing down (consensus can outrun the first gather).
        let gathered = wait_until(&dep, Duration::from_secs(20), |d| {
            members.iter().all(|&m| {
                d.probe(m, Duration::from_secs(2))
                    .is_some_and(|r| r.stats.snapshots_completed > 0)
            })
        });
        assert!(gathered, "paxos gathers completed over the wire");
        let report = dep.shutdown();
        // Post-mortem safety: at most one value chosen across the group.
        let gs = LiveDeployment::assemble(&report);
        assert!(
            paxos::properties::all().check(&gs).is_none(),
            "AtMostOneChosen holds on the assembled final state"
        );
        let totals = report.stats.totals();
        assert!(totals.service_delivered > 0, "consensus traffic flowed");
        assert!(totals.snapshots_completed > 0, "paxos snapshots gathered");
    });
}
