//! Integration test: execution steering end to end, across all crates —
//! buggy protocols under churn with and without CrystalBall, matching the
//! structure of §5.4.

use crystalball_suite::core::{CheckerMode, Controller, ControllerConfig, Mode};
use crystalball_suite::mc::{Engine, ParallelConfig, SearchConfig};
use crystalball_suite::model::{NodeId, PropertySet, SimDuration};
use crystalball_suite::protocols::randtree::{self, RandTree, RandTreeBugs};
use crystalball_suite::runtime::{
    Hook, NoHook, Scenario, SimConfig, SimStats, Simulation, SnapshotRuntime,
};

fn churn_scenario(nodes: &[NodeId], seed: u64) -> Scenario<RandTree> {
    Scenario::churn(
        nodes,
        |_| randtree::Action::Join { target: NodeId(0) },
        SimDuration::from_secs(25),
        SimDuration::from_secs(200),
        seed,
    )
}

fn run_randtree<H: Hook<RandTree>>(hook: H, seed: u64, with_snapshots: bool) -> (SimStats, H) {
    let nodes: Vec<NodeId> = (0..6).map(NodeId).collect();
    let proto = RandTree::new(2, vec![NodeId(0)], RandTreeBugs::as_shipped());
    let mut sim = Simulation::new(
        proto,
        &nodes,
        randtree::properties::all(),
        hook,
        SimConfig {
            seed,
            snapshots: with_snapshots.then(|| SnapshotRuntime {
                checkpoint_interval: SimDuration::from_secs(5),
                gather_interval: SimDuration::from_secs(5),
                ..SnapshotRuntime::default()
            }),
            ..SimConfig::default()
        },
    );
    sim.load_scenario(churn_scenario(&nodes, seed));
    sim.run_for(SimDuration::from_secs(220));
    (sim.stats.clone(), sim.hook)
}

fn steering_controller() -> Controller<RandTree> {
    Controller::new(
        RandTree::new(2, vec![NodeId(0)], RandTreeBugs::as_shipped()),
        randtree::properties::all(),
        ControllerConfig {
            mode: Mode::ExecutionSteering,
            mc_latency: SimDuration::from_secs(2),
            search: SearchConfig {
                max_states: Some(8_000),
                max_depth: Some(6),
                ..SearchConfig::default()
            },
            ..ControllerConfig::default()
        },
    )
}

#[test]
fn steering_avoids_most_inconsistencies() {
    let (baseline, _) = run_randtree(NoHook, 4242, false);
    assert!(
        baseline.violating_states > 0,
        "the as-shipped bugs must manifest in the baseline run"
    );

    let (steered, ctl) = run_randtree(steering_controller(), 4242, true);
    assert!(
        steered.violating_states < baseline.violating_states,
        "steering reduces inconsistent states ({} -> {})",
        baseline.violating_states,
        steered.violating_states
    );
    assert!(ctl.stats.mc_runs > 0, "the checker actually ran");
    assert!(
        ctl.stats.filter_hits + ctl.stats.isc_vetoes > 0,
        "CrystalBall intervened at least once: {:?}",
        ctl.stats
    );
}

/// The async checker path end to end: the background `CheckerPool`
/// runs prediction on its own thread while the simulated system keeps
/// executing, results are drained from the hook entry points, and the
/// checker latency is *measured* (wall clock) rather than modeled.
#[test]
fn async_checker_service_steers_without_blocking_the_system() {
    let (baseline, _) = run_randtree(NoHook, 4242, false);
    assert!(
        baseline.violating_states > 0,
        "bugs manifest in the baseline"
    );

    let ctl = Controller::new(
        RandTree::new(2, vec![NodeId(0)], RandTreeBugs::as_shipped()),
        randtree::properties::all(),
        ControllerConfig {
            mode: Mode::ExecutionSteering,
            checker: CheckerMode::Background,
            engine: Engine::Parallel(ParallelConfig {
                workers: 4,
                ..ParallelConfig::default()
            }),
            search: SearchConfig {
                max_states: Some(8_000),
                max_depth: Some(6),
                ..SearchConfig::default()
            },
            ..ControllerConfig::default()
        },
    );
    let (steered, mut ctl) = run_randtree(ctl, 4242, true);

    // Flush rounds still in flight when the simulation ended.
    ctl.drain_predictions(
        cb_model::SimTime::ZERO + SimDuration::from_secs(220),
        std::time::Duration::from_secs(120),
    );
    assert_eq!(ctl.pending_predictions(), 0, "service drained");
    assert!(
        ctl.stats.mc_runs > 0,
        "checking rounds completed: {:?}",
        ctl.stats
    );
    assert_eq!(
        ctl.stats.measured_mc_latencies.len() as u64,
        ctl.stats.mc_runs,
        "every round's latency was measured"
    );
    let avg = ctl.stats.avg_mc_latency().expect("measured latency");
    assert!(avg > std::time::Duration::ZERO);
    // The live system was never blocked by prediction, yet CrystalBall
    // still intervened (via whichever of filters/ISC the timing allowed).
    assert!(
        ctl.stats.filter_hits + ctl.stats.isc_vetoes > 0,
        "CrystalBall intervened: {:?}",
        ctl.stats
    );
    // No trajectory comparison here: in Background mode filter
    // activation times depend on wall-clock checker completion, so the
    // steered run's violation count is machine/load-dependent. The
    // deterministic synchronous tests own the "steering reduces
    // violations" claim; this test owns the async mechanism. Use the
    // baseline only as evidence the workload is violation-prone.
    let _ = steered;
}

#[test]
fn isc_only_configuration_also_helps() {
    // §5.4.1's middle row: "only the immediate safety check but not the
    // consequence prediction is active".
    let (baseline, _) = run_randtree(NoHook, 777, false);
    let isc_only = Controller::new(
        RandTree::new(2, vec![NodeId(0)], RandTreeBugs::as_shipped()),
        randtree::properties::all(),
        ControllerConfig {
            mode: Mode::ExecutionSteering,
            immediate_safety_check: true,
            // Cripple the checker so only the ISC can act.
            search: SearchConfig {
                max_states: Some(1),
                max_depth: Some(0),
                ..SearchConfig::default()
            },
            replay_known_paths: false,
            ..ControllerConfig::default()
        },
    );
    let (guarded, ctl) = run_randtree(isc_only, 777, true);
    assert!(
        ctl.stats.filters_installed == 0,
        "no filters without a working checker"
    );
    if baseline.violating_states > 0 {
        assert!(
            guarded.violating_states <= baseline.violating_states,
            "ISC alone never makes things worse"
        );
    }
}

#[test]
fn fixed_protocol_run_is_clean_and_uninterfered() {
    let nodes: Vec<NodeId> = (0..6).map(NodeId).collect();
    let proto = RandTree::new(2, vec![NodeId(0)], RandTreeBugs::none());
    let ctl = Controller::new(
        proto.clone(),
        randtree::properties::all(),
        ControllerConfig {
            mc_latency: SimDuration::from_secs(2),
            search: SearchConfig {
                max_states: Some(6_000),
                max_depth: Some(5),
                ..SearchConfig::default()
            },
            ..ControllerConfig::default()
        },
    );
    let mut sim = Simulation::new(
        proto,
        &nodes,
        randtree::properties::all(),
        ctl,
        SimConfig {
            seed: 5,
            snapshots: Some(SnapshotRuntime {
                checkpoint_interval: SimDuration::from_secs(5),
                gather_interval: SimDuration::from_secs(5),
                ..SnapshotRuntime::default()
            }),
            ..SimConfig::default()
        },
    );
    sim.load_scenario(churn_scenario(&nodes, 5));
    sim.run_for(SimDuration::from_secs(150));
    assert_eq!(sim.stats.violating_states, 0, "fixed protocol stays clean");
    assert_eq!(
        sim.hook.stats.isc_vetoes, 0,
        "the ISC never fires on a correct protocol"
    );
}

/// The snapshot pipeline feeds the checker states equal to the live ones:
/// decode(encode(slot)) over the full gather path.
#[test]
fn snapshots_decode_to_live_states() {
    struct Verify {
        checked: usize,
    }
    impl Hook<RandTree> for Verify {
        fn on_snapshot(
            &mut self,
            _now: cb_model::SimTime,
            _node: NodeId,
            snap: &cb_snapshot::Snapshot,
        ) {
            let gs = Controller::<RandTree>::snapshot_to_state(snap);
            // Decoded snapshot states must be internally consistent enough
            // to hash and re-encode identically.
            for (n, slot) in &gs.nodes {
                let bytes = cb_model::Encode::to_bytes(slot);
                assert_eq!(&bytes, snap.states.get(n).unwrap());
            }
            self.checked += 1;
        }
    }
    let nodes: Vec<NodeId> = (0..5).map(NodeId).collect();
    let proto = RandTree::new(2, vec![NodeId(0)], RandTreeBugs::none());
    let mut sim = Simulation::new(
        proto,
        &nodes,
        PropertySet::new(),
        Verify { checked: 0 },
        SimConfig {
            seed: 9,
            snapshots: Some(SnapshotRuntime {
                checkpoint_interval: SimDuration::from_secs(3),
                gather_interval: SimDuration::from_secs(3),
                ..SnapshotRuntime::default()
            }),
            ..SimConfig::default()
        },
    );
    for (i, &n) in nodes.iter().enumerate() {
        sim.load_scenario(Scenario::new().at(
            cb_model::SimTime(i as u64 * 500_000),
            cb_runtime::ScriptEvent::Action {
                node: n,
                action: randtree::Action::Join { target: NodeId(0) },
            },
        ));
    }
    sim.run_for(SimDuration::from_secs(60));
    assert!(sim.hook.checked > 0, "snapshots were gathered and verified");
}

/// Determinism across the whole stack: identical seeds give identical
/// stats, different seeds diverge.
#[test]
fn whole_stack_determinism() {
    let fingerprint = |seed: u64| {
        let (stats, _) = run_randtree(NoHook, seed, true);
        (
            stats.actions_executed,
            stats.messages_delivered,
            stats.violating_states,
            stats.snapshots_completed,
            stats.snapshot_bytes_sent,
        )
    };
    assert_eq!(fingerprint(31), fingerprint(31));
    assert_ne!(fingerprint(31), fingerprint(32));
}

/// The same protocol type drives live execution and the checker: a state
/// reached live can be fed to the checker unchanged.
#[test]
fn live_state_feeds_checker_directly() {
    let nodes: Vec<NodeId> = (0..5).map(NodeId).collect();
    let proto = RandTree::new(2, vec![NodeId(0)], RandTreeBugs::as_shipped());
    let mut sim = Simulation::new(
        proto.clone(),
        &nodes,
        randtree::properties::all(),
        NoHook,
        SimConfig {
            seed: 77,
            track_violations: false,
            ..SimConfig::default()
        },
    );
    sim.load_scenario(churn_scenario(&nodes, 77));
    sim.run_for(SimDuration::from_secs(40));
    // Feed the *entire* live global state to consequence prediction.
    let out = crystalball_suite::mc::find_consequences(
        &proto,
        &randtree::properties::all(),
        &sim.gs,
        SearchConfig {
            max_states: Some(30_000),
            max_depth: Some(6),
            ..SearchConfig::default()
        },
    );
    // With all seven bugs armed and churn underway, some prediction should
    // exist — but the real assertion is that the pipeline composes.
    let _ = out.first();
    assert!(out.stats.states_visited > 0);
}
