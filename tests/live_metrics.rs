//! Integration test for the live metrics plane: a real deployment with
//! `--metrics`-style enablement serves a scrapeable Prometheus endpoint
//! mid-run — under socket-level loss/delay faults and node churn — and a
//! predicted violation surfaces as a first-class JSONL alert whose round
//! id joins against the cb-obs trace.
//!
//! Same determinism contract as `tests/live_deployment.rs`: node threads
//! interleave under a real scheduler, so assertions are about protocol
//! and observability *outcomes* (families present, counters monotone,
//! alert joinable), never byte-level equality. Every wait is a bounded
//! poll and the body runs under a watchdog.

use std::sync::{mpsc, Mutex, MutexGuard, OnceLock};
use std::thread;
use std::time::Duration;

use crystalball_suite::live::{
    live_checker_config, randtree_deployment_with, wait_until, LiveConfig, LiveFault,
    LiveNodeConfig,
};
use crystalball_suite::model::NodeId;
use crystalball_suite::obs;
use crystalball_suite::protocols::randtree::{RandTreeBugs, Status};

/// One live deployment at a time (see `tests/live_deployment.rs`).
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn with_watchdog<T: Send + 'static>(
    limit: Duration,
    name: &str,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = thread::Builder::new()
        .name(format!("watchdog-{name}"))
        .spawn(move || {
            let _ = tx.send(f());
        })
        .expect("spawn watchdog body");
    let deadline = std::time::Instant::now() + limit;
    loop {
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(v) => {
                let _ = handle.join();
                return v;
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if handle.is_finished() {
                    if let Err(payload) = handle.join() {
                        std::panic::resume_unwind(payload);
                    }
                    panic!("{name}: body exited without a result");
                }
                if std::time::Instant::now() >= deadline {
                    panic!("{name}: wedged — did not finish within {limit:?}");
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                if let Err(payload) = handle.join() {
                    std::panic::resume_unwind(payload);
                }
                panic!("{name}: body exited without a result");
            }
        }
    }
}

fn fast_node_config() -> LiveNodeConfig {
    LiveNodeConfig {
        checkpoint_interval: Duration::from_millis(80),
        gather_interval: Duration::from_millis(120),
        gather_timeout: Duration::from_millis(350),
        time_scale: 0.02,
        ..LiveNodeConfig::default()
    }
}

/// The families `tools/metrics-check` requires — one representative per
/// instrumented plane. Kept in sync with that tool's `REQUIRED` table.
const REQUIRED_FAMILIES: &[&str] = &[
    "cb_reactor_polls_total",
    "cb_reactor_wake_lag_us",
    "cb_peer_backpressure_drops_total",
    "cb_peer_dial_failures_total",
    "cb_node_submits_total",
    "cb_node_gather_install_us",
    "cb_checker_rounds_total",
    "cb_checker_round_us",
    "cb_checker_backlog",
    "cb_cache_hits_total",
    "cb_cache_misses_total",
    "cb_mc_states_visited_total",
    "cb_mc_explored_resident_bytes",
    "cb_metrics_scrapes_total",
    "cb_trace_ring_dropped",
];

/// The acceptance scenario: an 8-node RandTree deployment with the R1 bug
/// armed serves `/metrics` mid-run while loss/delay faults degrade links
/// and nodes churn; two scrapes show every required family and monotone
/// counters; the checker's predicted violation emits an alert whose round
/// id appears in the cb-obs trace.
#[test]
fn live_metrics_scrape_under_faults_and_alert_joins_trace() {
    let _serial = serial();
    with_watchdog(Duration::from_secs(180), "live-metrics", || {
        // Trace recorder on, so the predicted-violation alert's trace
        // mirror (and the scrape counter mirrors) have somewhere to go.
        obs::enable();
        let config = LiveConfig {
            seed: 7,
            node: fast_node_config(),
            checker: live_checker_config(8_000, 6, 2),
            ..LiveConfig::default()
        };
        let mut dep = randtree_deployment_with(8, RandTreeBugs::only("R1"), config, 0, |b| {
            b.metrics("127.0.0.1:0")
        })
        .expect("boot 8-node deployment with metrics endpoint");
        let addr = dep.metrics_addr().expect("metrics endpoint bound");

        // Phase 1: the overlay forms (re-kick joins lost to races).
        let joined = wait_until(&dep, Duration::from_secs(60), |d| {
            d.node_ids()
                .iter()
                .all(|&n| match d.probe(n, Duration::from_secs(2)) {
                    Some(r) if r.slot.state.status == Status::Joined => true,
                    Some(_) => {
                        d.inject(
                            n,
                            crystalball_suite::protocols::randtree::Action::Join {
                                target: NodeId(0),
                            },
                        );
                        false
                    }
                    None => false,
                })
        });
        assert!(joined, "all 8 nodes joined the overlay over TCP");

        // At least one checking round must have completed before the
        // first scrape, so the search-plane families (registered when a
        // search starts) are present.
        let checking = wait_until(&dep, Duration::from_secs(45), |d| {
            d.probe_checker(Duration::from_secs(2))
                .is_some_and(|c| c.rounds_completed > 0)
        });
        assert!(checking, "checker completed a round before first scrape");

        // Scrape 1: a live HTTP GET against the running deployment.
        let body1 = obs::metrics::fetch(addr, Duration::from_secs(5)).expect("first scrape");
        let parsed1 = obs::metrics::parse_exposition(&body1);
        for fam in REQUIRED_FAMILIES {
            assert!(
                parsed1.family_type(fam).is_some(),
                "required family {fam} missing from first scrape:\n{body1}"
            );
        }
        assert!(
            parsed1.types.len() >= 12,
            "at least 12 families served, got {}",
            parsed1.types.len()
        );

        // Phase 2: open prediction opportunities on a clean fabric —
        // kill a childless root child for good (the Fig. 2 recipe from
        // tests/live_deployment.rs) and wait for the checker to predict
        // the R1 inconsistency. This is what fires the predicted-
        // violation alert.
        let root = dep
            .probe(NodeId(0), Duration::from_secs(5))
            .expect("probe root");
        let root_children: Vec<NodeId> = root.slot.state.children.iter().copied().collect();
        assert!(!root_children.is_empty(), "root has children");
        let mut sacrifice = root_children[0];
        for &c in &root_children {
            if dep
                .probe(c, Duration::from_secs(2))
                .is_some_and(|r| r.slot.state.children.is_empty())
            {
                sacrifice = c;
            }
        }
        dep.kill(sacrifice);
        let predicted = wait_until(&dep, Duration::from_secs(60), |d| {
            d.probe_checker(Duration::from_secs(2))
                .is_some_and(|c| c.predictions > 0)
        });
        assert!(
            predicted,
            "checker predicted a violation: {:?}",
            dep.probe_checker(Duration::from_secs(5))
        );

        // Phase 3: degrade the fabric — sampled loss plus delay/jitter
        // on the root's links — and churn a childless survivor. The
        // metrics endpoint must keep answering, and the deployment must
        // keep making progress, under the faults.
        for n in (1..8u32).map(NodeId) {
            dep.set_link_faults(
                NodeId(0),
                n,
                vec![
                    LiveFault::Loss(0.05),
                    LiveFault::Delay {
                        delay: Duration::from_millis(2),
                        jitter: Duration::from_millis(3),
                    },
                ],
            );
        }
        let victim = (1..8u32)
            .map(NodeId)
            .filter(|&n| n != sacrifice && dep.is_up(n))
            .find(|&n| {
                dep.probe(n, Duration::from_secs(1))
                    .is_some_and(|r| r.slot.state.children.is_empty())
            });
        if let Some(v) = victim {
            dep.kill(v);
            thread::sleep(Duration::from_millis(80));
            dep.restart(v).expect("restart churned node");
        }
        let rounds_before_faults = dep
            .probe_checker(Duration::from_secs(5))
            .map(|c| c.rounds_completed)
            .unwrap_or(0);
        let progressed = wait_until(&dep, Duration::from_secs(45), |d| {
            d.probe_checker(Duration::from_secs(2))
                .is_some_and(|c| c.rounds_completed > rounds_before_faults)
        });
        assert!(progressed, "checking rounds keep completing under faults");

        // Scrape 2: still answering mid-faults, and monotone vs scrape 1.
        let body2 = obs::metrics::fetch(addr, Duration::from_secs(5)).expect("second scrape");
        let parsed2 = obs::metrics::parse_exposition(&body2);
        for fam in REQUIRED_FAMILIES {
            assert!(
                parsed2.family_type(fam).is_some(),
                "required family {fam} missing from second scrape"
            );
        }
        let mut compared = 0usize;
        for (series, v1) in &parsed1.samples {
            if !series.ends_with("_total") || series.contains('{') {
                continue;
            }
            let v2 = parsed2
                .value(series)
                .unwrap_or_else(|| panic!("{series} vanished between scrapes"));
            assert!(
                v2 >= *v1,
                "counter {series} decreased between scrapes: {v1} -> {v2}"
            );
            compared += 1;
        }
        assert!(compared >= 8, "compared {compared} counter families");
        let s1 = parsed1.value("cb_metrics_scrapes_total").unwrap_or(0.0);
        let s2 = parsed2.value("cb_metrics_scrapes_total").unwrap_or(0.0);
        assert!(s2 > s1, "scrape counter strictly increases: {s1} -> {s2}");
        assert!(
            parsed2.value("cb_node_submits_total").unwrap_or(0.0) > 0.0,
            "live submissions were recorded"
        );

        // Phase 4: the predicted violation surfaced as a first-class
        // alert carrying the round id...
        let alerts = obs::health::recent_alerts();
        let predicted_alerts: Vec<_> = alerts
            .iter()
            .filter(|l| l.contains("\"rule\":\"predicted_violation\""))
            .collect();
        assert!(
            !predicted_alerts.is_empty(),
            "a predicted_violation alert was emitted; tail: {alerts:?}"
        );
        let mut alert_rounds = Vec::new();
        for line in &predicted_alerts {
            let v = obs::json::parse(line).expect("alert line parses as JSON");
            let round = v
                .get("round")
                .and_then(obs::json::Value::as_u64)
                .expect("alert carries a round id");
            assert!(round != 0, "alert round id is a real causality tag");
            assert!(v.get("node").is_some(), "alert carries the node");
            assert!(v.get("property").is_some(), "alert carries the property");
            alert_rounds.push(round);
        }

        // ... and that round id joins against the cb-obs trace (shutdown
        // first: thread exit flushes the checker's ring).
        let report = dep.shutdown();
        assert!(report.stats.checker.predictions > 0);
        let trace = obs::drain();
        let joined = alert_rounds
            .iter()
            .any(|r| trace.events.iter().any(|e| e.id == *r));
        assert!(
            joined,
            "an alert round id appears in the trace ({} events, rounds {alert_rounds:?})",
            trace.events.len()
        );
        // The alert's own trace mirror is there too, under the same id.
        assert!(
            trace
                .events
                .iter()
                .any(|e| e.name == "alert.predicted_violation"
                    && alert_rounds.contains(&e.id)),
            "the alert.predicted_violation instant was mirrored into the trace"
        );
        obs::metrics::disable();
        obs::disable();
    });
}
