//! The observability layer must be outcome-invisible: enabling the
//! `cb-obs` recorder may not change a single deterministic byte of any
//! checking surface. Each leg here reruns an existing equivalence
//! scenario — the parallel model-checker fingerprint
//! (`parallel_equivalence`), a memoized controller's outcome
//! (`prediction_cache_equivalence`), and the mixed fleet's deterministic
//! JSON (`fleet_mixed`) — once with tracing off and once with the
//! recorder enabled, and compares the results exactly.
//!
//! The recorder enable is process-global, so all three scenarios run
//! inside one test body (off legs first, then on legs); a separate test
//! binary keeps the toggle from racing the other suites.
//!
//! The metrics plane (`obs::metrics`) carries the same contract — its
//! registry is only ever read through `scrape()` — so a final set of
//! legs reruns the scenarios with metric recording enabled on top of
//! tracing and demands the same bytes again.

use std::collections::BTreeSet;
use std::time::Duration;

use cb_bench::scenarios::randtree_fig2;
use crystalball_suite::core::{CheckerMode, Controller, ControllerConfig, Mode};
use crystalball_suite::fleet::{
    bullet_member, paxos_member, randtree_member, FaultConfig, FaultPlan, Fleet, FleetConfig,
    MemberCommon,
};
use crystalball_suite::mc::{find_consequences_parallel, Engine, ParallelConfig, SearchConfig};
use crystalball_suite::model::{ExploreOptions, SimDuration, SimTime};
use crystalball_suite::obs;
use crystalball_suite::protocols::bullet::BulletBugs;
use crystalball_suite::protocols::paxos::PaxosBugs;
use crystalball_suite::protocols::randtree::{self, RandTreeBugs};

/// Parallel consequence prediction over the Fig. 2 state: the
/// `parallel_equivalence` fingerprint (violations + visit counts).
fn mc_leg() -> (Vec<String>, Vec<usize>, usize, usize) {
    let (proto, gs) = randtree_fig2(RandTreeBugs::only("R1"));
    let props = randtree::properties::all();
    let config = SearchConfig {
        max_depth: Some(5),
        max_states: Some(20_000),
        max_violations: 3,
        ..SearchConfig::default()
    };
    let par = ParallelConfig {
        workers: 2,
        merge_shards: 2,
        ..ParallelConfig::default()
    };
    let out = find_consequences_parallel(&proto, &props, &gs, config, &par);
    (
        out.violations.iter().map(|v| v.scenario()).collect(),
        out.violations.iter().map(|v| v.depth).collect(),
        out.stats.states_visited,
        out.stats.states_enqueued,
    )
}

/// (node, property, scenario, depth) report keys from a controller run.
type ReportSet = BTreeSet<(u32, String, String, usize)>;

/// A memoized sharded controller driven with repeated submissions: the
/// `prediction_cache_equivalence` outcome (reports, filters, counters).
fn cache_leg() -> (ReportSet, BTreeSet<(u32, String)>, u64, u64) {
    let (proto, gs) = randtree_fig2(RandTreeBugs::only("R1"));
    let mut ctl = Controller::new(
        proto.clone(),
        randtree::properties::all(),
        ControllerConfig {
            mode: Mode::ExecutionSteering,
            checker: CheckerMode::Sharded { shards: 2 },
            engine: Engine::Parallel(ParallelConfig {
                workers: 2,
                ..ParallelConfig::default()
            }),
            mc_latency: SimDuration::from_millis(500),
            search: SearchConfig {
                max_states: Some(6_000),
                max_depth: Some(5),
                explore: ExploreOptions::minimal(),
                ..SearchConfig::default()
            },
            prediction_cache: true,
            ..ControllerConfig::default()
        },
    );
    let nodes: Vec<_> = gs.nodes.keys().copied().collect();
    let mut t = 0u64;
    // Three passes over the same state: the later passes must memoize.
    for _ in 0..3 {
        for &node in &nodes {
            ctl.run_round(SimTime(t), node, &gs);
            t += 1_000;
        }
    }
    ctl.drain_predictions(SimTime(t + 1_000_000), Duration::from_secs(120));
    assert_eq!(ctl.pending_predictions(), 0, "all rounds drained");
    (
        ctl.reports
            .iter()
            .map(|r| {
                (
                    r.node.0,
                    r.violation.property.to_string(),
                    r.scenario.clone(),
                    r.depth,
                )
            })
            .collect(),
        ctl.active_filters()
            .into_iter()
            .map(|(owner, f)| (owner.0, f.to_string()))
            .collect(),
        ctl.stats.predictions,
        ctl.stats.filters_installed,
    )
}

/// A small mixed-protocol fleet: the `fleet_mixed` deterministic JSON.
fn fleet_leg() -> String {
    let horizon = SimDuration::from_secs(50);
    let controller = |max_states: usize, depth: usize, minimal: bool| ControllerConfig {
        mode: Mode::ExecutionSteering,
        checker: CheckerMode::Sharded { shards: 2 },
        engine: Engine::Parallel(ParallelConfig {
            workers: 2,
            ..ParallelConfig::default()
        }),
        mc_latency: SimDuration::from_millis(500),
        search: SearchConfig {
            max_states: Some(max_states),
            max_depth: Some(depth),
            explore: if minimal {
                ExploreOptions::minimal()
            } else {
                ExploreOptions::default()
            },
            ..SearchConfig::default()
        },
        ..ControllerConfig::default()
    };
    let mut fleet = Fleet::new(FleetConfig {
        seed: 2024,
        duration: horizon,
        drain_interval: SimDuration::from_secs(5),
        checker_lanes: 2,
        pool_threads: 1,
    });
    let rt = fleet.runtime().clone();
    fleet.add_member(randtree_member(
        &rt,
        MemberCommon::steering("randtree-overlay", 2024 ^ 0xa1, controller(3_000, 6, false)),
        6,
        RandTreeBugs::only("R1"),
        SimDuration::from_secs(25),
        horizon,
    ));
    fleet.add_member(paxos_member(
        &rt,
        MemberCommon::steering("paxos-group", 2024 ^ 0xb2, controller(4_000, 12, true)),
        PaxosBugs::only("P2"),
        2,
        SimDuration::from_secs(25),
    ));
    fleet.add_member(bullet_member(
        &rt,
        MemberCommon::steering("bullet-mesh", 2024 ^ 0xc3, controller(3_000, 6, true)),
        5,
        30,
        BulletBugs::only("B1"),
    ));
    fleet.load_fault_plan(FaultPlan::generate(
        &FaultConfig {
            nodes: 6,
            duration: horizon,
            start_after: SimDuration::from_secs(35),
            partition_mean_gap: None,
            churn_mean_gap: Some(SimDuration::from_secs(40)),
            degrade_mean_gap: Some(SimDuration::from_secs(35)),
            ..FaultConfig::default()
        },
        2024,
    ));
    let stats = fleet.run();
    stats.deterministic_json()
}

#[test]
fn tracing_is_outcome_invisible() {
    assert!(!obs::enabled(), "recorder must start disabled");
    let mc_off = mc_leg();
    let cache_off = cache_leg();
    let fleet_off = fleet_leg();
    let idle = obs::drain();
    assert!(
        idle.events.is_empty(),
        "disabled run recorded events: {:?}",
        &idle.events[..idle.events.len().min(5)]
    );

    obs::enable_with_capacity(1 << 12);
    let mc_on = mc_leg();
    let cache_on = cache_leg();
    let fleet_on = fleet_leg();
    obs::disable();
    let trace = obs::drain();

    // The recorder really collected — this was not a no-op comparison.
    let spans = trace
        .events
        .iter()
        .filter(|e| matches!(e.kind, obs::EventKind::Span { .. }))
        .count();
    assert!(spans > 0, "traced legs produced no spans");
    assert!(
        trace.events.iter().any(|e| e.name == "fleet.drain"),
        "fleet drain boundaries missing from the trace"
    );

    assert_eq!(
        mc_off, mc_on,
        "parallel search fingerprint changed under tracing"
    );
    assert_eq!(
        cache_off, cache_on,
        "memoized controller outcome changed under tracing"
    );
    assert_eq!(
        fleet_off, fleet_on,
        "fleet deterministic JSON changed under tracing"
    );

    // Metrics leg: turn the metrics registry on (recording plus a live
    // scrape mid-flight) and demand byte identity again — the scrape
    // path only *reads* the registry, and recording points never feed
    // back into deterministic state.
    obs::metrics::enable();
    let mc_metrics = mc_leg();
    let scrape = obs::metrics::scrape();
    assert!(
        scrape.contains("cb_mc_states_visited_total"),
        "metrics leg really recorded: {scrape}"
    );
    let cache_metrics = cache_leg();
    let fleet_metrics = fleet_leg();
    obs::metrics::disable();

    assert_eq!(
        mc_off, mc_metrics,
        "parallel search fingerprint changed under metrics"
    );
    assert_eq!(
        cache_off, cache_metrics,
        "memoized controller outcome changed under metrics"
    );
    assert_eq!(
        fleet_off, fleet_metrics,
        "fleet deterministic JSON changed under metrics"
    );
}
