//! Memoization must be invisible: a controller with the prediction cache
//! enabled has to produce exactly the same predicted violations,
//! installed filters, and counters as one running every round cold — on
//! RandTree and Paxos, across the synchronous, background, and sharded
//! backends, at every worker count of the CI matrix — while actually
//! hitting the cache (repeated submissions of a settled state must
//! memoize).
//!
//! Optimistic execution rides the same contract: a speculative round that
//! reconciles against the matching full snapshot commits as a cache hit;
//! one that guessed wrong is cancelled, never surfaces in filters or
//! reports, and the real round reruns cold.

use std::collections::BTreeSet;
use std::time::Duration;

use crystalball_suite::core::{CacheStats, CheckerMode, Controller, ControllerConfig, Mode};
use crystalball_suite::mc::{Engine, ParallelConfig, SearchConfig};
use crystalball_suite::model::{
    apply_event, Event, ExploreOptions, GlobalState, NodeId, Protocol, SimDuration, SimTime,
};
use crystalball_suite::protocols::paxos::{self, PaxosBugs};
use crystalball_suite::protocols::randtree::{self, RandTreeBugs};

use cb_bench::scenarios::{paxos_near_violation, randtree_fig2};

/// Everything a memoized run must reproduce bit for bit.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    violations: BTreeSet<(u32, String, String, usize)>,
    filters: BTreeSet<(u32, String)>,
    predictions: u64,
    filters_installed: u64,
}

fn outcome_of<P: Protocol>(ctl: &Controller<P>) -> Outcome {
    Outcome {
        violations: ctl
            .reports
            .iter()
            .map(|r| {
                (
                    r.node.0,
                    r.violation.property.to_string(),
                    r.scenario.clone(),
                    r.depth,
                )
            })
            .collect(),
        filters: ctl
            .active_filters()
            .into_iter()
            .map(|(owner, f)| (owner.0, f.to_string()))
            .collect(),
        predictions: ctl.stats.predictions,
        filters_installed: ctl.stats.filters_installed,
    }
}

fn controller<P: Protocol>(
    proto: &P,
    props: crystalball_suite::model::PropertySet<P>,
    search: &SearchConfig,
    checker: CheckerMode,
    engine: Engine,
    cache: bool,
) -> Controller<P> {
    Controller::new(
        proto.clone(),
        props,
        ControllerConfig {
            mode: Mode::ExecutionSteering,
            checker,
            engine,
            mc_latency: SimDuration::from_millis(500),
            search: search.clone(),
            // Explicit, so the test ignores the CB_PRED_CACHE env default.
            prediction_cache: cache,
            ..ControllerConfig::default()
        },
    )
}

/// Submits the start state three times per node (the third lands after
/// `known_paths` settled, so a warm cache must hit), then a drifted state
/// twice per node, and returns the comparable outcome plus the cache
/// counters.
#[allow(clippy::too_many_arguments)]
fn drive<P, F>(
    proto: &P,
    props: crystalball_suite::model::PropertySet<P>,
    search: &SearchConfig,
    start: &GlobalState<P>,
    mutate: &F,
    checker: CheckerMode,
    engine: Engine,
    cache: bool,
) -> (Outcome, CacheStats)
where
    P: Protocol,
    F: Fn(&mut GlobalState<P>),
{
    let mut ctl = controller(proto, props, search, checker, engine, cache);
    let nodes: Vec<NodeId> = start.nodes.keys().copied().collect();
    let mut t = 0u64;
    for _ in 0..3 {
        for &node in &nodes {
            ctl.run_round(SimTime(t), node, start);
            t += 1;
        }
    }
    let mut changed = start.clone();
    mutate(&mut changed);
    for _ in 0..2 {
        for &node in &nodes {
            ctl.run_round(SimTime(100 + t), node, &changed);
            t += 1;
        }
    }
    ctl.drain_predictions(SimTime(1_000), Duration::from_secs(300));
    assert_eq!(ctl.pending_predictions(), 0, "all rounds drained");
    (outcome_of(&ctl), ctl.checker_cache_stats())
}

fn assert_cache_invisible<P, F>(
    proto: P,
    props: fn() -> crystalball_suite::model::PropertySet<P>,
    search: SearchConfig,
    start: GlobalState<P>,
    mutate: F,
) where
    P: Protocol,
    F: Fn(&mut GlobalState<P>),
{
    let mut backends = vec![
        (CheckerMode::Synchronous, Engine::Sequential),
        (CheckerMode::Background, Engine::Sequential),
        (CheckerMode::Sharded { shards: 2 }, Engine::Sequential),
        (CheckerMode::Sharded { shards: 4 }, Engine::Sequential),
    ];
    for workers in cb_bench::matrix::workers() {
        backends.push((
            CheckerMode::Sharded { shards: 2 },
            Engine::Parallel(ParallelConfig {
                workers,
                ..ParallelConfig::default()
            }),
        ));
    }
    let mut reference: Option<Outcome> = None;
    for (checker, engine) in backends {
        let (cold, cold_cs) = drive(
            &proto,
            props(),
            &search,
            &start,
            &mutate,
            checker,
            engine.clone(),
            false,
        );
        let (warm, warm_cs) = drive(
            &proto,
            props(),
            &search,
            &start,
            &mutate,
            checker,
            engine.clone(),
            true,
        );
        assert!(
            cold.predictions > 0,
            "scenario must actually predict something: {cold:?}"
        );
        assert_eq!(
            cold, warm,
            "memoized run diverged from cold on {checker:?}/{engine:?}"
        );
        assert_eq!(
            cold_cs,
            CacheStats::default(),
            "cache-off run must never touch the cache"
        );
        assert!(
            warm_cs.hits > 0,
            "repeated submissions must memoize on {checker:?}/{engine:?}: {warm_cs:?}"
        );
        match &reference {
            Some(r) => assert_eq!(
                r, &cold,
                "backend {checker:?}/{engine:?} diverged from the synchronous outcome"
            ),
            None => reference = Some(cold),
        }
    }
}

#[test]
fn memoized_runs_match_cold_on_randtree() {
    let (proto, gs) = randtree_fig2(RandTreeBugs::only("R1"));
    let search = SearchConfig {
        max_states: Some(30_000),
        max_depth: Some(7),
        explore: ExploreOptions::default(),
        ..SearchConfig::default()
    };
    let drifted = [NodeId(9), NodeId(13), NodeId(21)][cb_bench::matrix::seed() as usize % 3];
    assert_cache_invisible(proto, randtree::properties::all, search, gs, move |gs| {
        let s = &mut gs.slot_mut(drifted).unwrap().state;
        s.recovery_scheduled = false;
    });
}

#[test]
fn memoized_runs_match_cold_on_paxos() {
    let (proto, gs) = paxos_near_violation(PaxosBugs::only("P1"));
    let search = SearchConfig {
        max_states: Some(30_000),
        max_depth: Some(7),
        explore: ExploreOptions::minimal(),
        ..SearchConfig::default()
    };
    let mutator_proto = proto.clone();
    let extra_deliveries = 1 + cb_bench::matrix::seed() as usize % 2;
    assert_cache_invisible(proto, paxos::properties::all, search, gs, move |gs| {
        for _ in 0..extra_deliveries {
            if !gs.inflight.is_empty() {
                apply_event(&mutator_proto, gs, &Event::Deliver { index: 0 });
            }
        }
    });
}

/// A speculation whose base matches the full snapshot commits: the real
/// round reconciles it, takes the cache hit, and produces exactly the
/// outcome an unspeculated controller produces.
#[test]
fn speculation_commits_when_snapshot_matches() {
    let (proto, gs) = randtree_fig2(RandTreeBugs::only("R1"));
    let search = SearchConfig {
        max_states: Some(30_000),
        max_depth: Some(7),
        explore: ExploreOptions::default(),
        ..SearchConfig::default()
    };
    let node = *gs.nodes.keys().next().unwrap();

    let mut plain = controller(
        &proto,
        randtree::properties::all(),
        &search,
        CheckerMode::Synchronous,
        Engine::Sequential,
        true,
    );
    plain.run_round(SimTime(1), node, &gs);

    let mut spec = controller(
        &proto,
        randtree::properties::all(),
        &search,
        CheckerMode::Synchronous,
        Engine::Sequential,
        true,
    );
    spec.speculate_round(SimTime(0), node, &gs);
    spec.run_round(SimTime(1), node, &gs);

    assert_eq!(outcome_of(&plain), outcome_of(&spec));
    let cs = spec.checker_cache_stats();
    assert_eq!(cs.spec_started, 1, "{cs:?}");
    assert_eq!(cs.spec_committed, 1, "{cs:?}");
    assert_eq!(cs.spec_cancelled, 0, "{cs:?}");
    assert_eq!(cs.hits, 1, "the real round must reuse the speculated work");
    assert_eq!(cs.misses, 0, "{cs:?}");
}

/// A speculation computed on a partial snapshot that the completed gather
/// contradicts is cancelled: its work never reaches filters or reports,
/// the counters record the cancellation, and the real round reruns cold —
/// the outcome stays identical to a never-speculated run.
#[test]
fn speculation_cancels_when_snapshot_differs() {
    let (proto, gs) = randtree_fig2(RandTreeBugs::only("R1"));
    let search = SearchConfig {
        max_states: Some(30_000),
        max_depth: Some(7),
        explore: ExploreOptions::default(),
        ..SearchConfig::default()
    };
    let node = *gs.nodes.keys().next().unwrap();
    // The partial gather guessed a different neighborhood: one member's
    // recovery timer had not fired yet when the speculation launched.
    let drifted = *gs.nodes.keys().last().unwrap();
    let mut partial = gs.clone();
    partial.slot_mut(drifted).unwrap().state.recovery_scheduled =
        !partial.slot_mut(drifted).unwrap().state.recovery_scheduled;

    let mut plain = controller(
        &proto,
        randtree::properties::all(),
        &search,
        CheckerMode::Synchronous,
        Engine::Sequential,
        true,
    );
    plain.run_round(SimTime(1), node, &gs);

    let mut spec = controller(
        &proto,
        randtree::properties::all(),
        &search,
        CheckerMode::Synchronous,
        Engine::Sequential,
        true,
    );
    spec.speculate_round(SimTime(0), node, &partial);
    spec.run_round(SimTime(1), node, &gs);

    assert_eq!(
        outcome_of(&plain),
        outcome_of(&spec),
        "a cancelled speculation must leave no trace in the outcome"
    );
    let cs = spec.checker_cache_stats();
    assert_eq!(cs.spec_started, 1, "{cs:?}");
    assert_eq!(cs.spec_committed, 0, "{cs:?}");
    assert_eq!(cs.spec_cancelled, 1, "{cs:?}");
    assert_eq!(cs.hits, 0, "the real round must not reuse cancelled work");
    assert_eq!(cs.misses, 1, "{cs:?}");
}

/// Speculation over the sharded backend: commit and cancel both stay
/// outcome-invisible when the rounds cross the pool's wire encoders.
#[test]
fn speculation_is_outcome_invisible_on_sharded_pool() {
    let (proto, gs) = randtree_fig2(RandTreeBugs::only("R1"));
    let search = SearchConfig {
        max_states: Some(30_000),
        max_depth: Some(7),
        explore: ExploreOptions::default(),
        ..SearchConfig::default()
    };
    let nodes: Vec<NodeId> = gs.nodes.keys().copied().collect();
    let drifted = *nodes.last().unwrap();
    let mut partial = gs.clone();
    partial.slot_mut(drifted).unwrap().state.recovery_scheduled =
        !partial.slot_mut(drifted).unwrap().state.recovery_scheduled;

    let mut plain = controller(
        &proto,
        randtree::properties::all(),
        &search,
        CheckerMode::Sharded { shards: 2 },
        Engine::Sequential,
        true,
    );
    for (i, &n) in nodes.iter().enumerate() {
        plain.run_round(SimTime(i as u64), n, &gs);
    }
    plain.drain_predictions(SimTime(1_000), Duration::from_secs(300));

    let mut spec = controller(
        &proto,
        randtree::properties::all(),
        &search,
        CheckerMode::Sharded { shards: 2 },
        Engine::Sequential,
        true,
    );
    for (i, &n) in nodes.iter().enumerate() {
        // Even nodes speculated on the matching state (commit), odd nodes
        // on the contradicted partial (cancel).
        if i % 2 == 0 {
            spec.speculate_round(SimTime(i as u64), n, &gs);
        } else {
            spec.speculate_round(SimTime(i as u64), n, &partial);
        }
        spec.run_round(SimTime(i as u64), n, &gs);
    }
    spec.drain_predictions(SimTime(1_000), Duration::from_secs(300));

    assert_eq!(outcome_of(&plain), outcome_of(&spec));
    let cs = spec.checker_cache_stats();
    assert_eq!(cs.spec_started, nodes.len() as u64, "{cs:?}");
    assert!(cs.spec_committed > 0, "{cs:?}");
    assert!(cs.spec_cancelled > 0, "{cs:?}");
    assert_eq!(
        cs.spec_committed + cs.spec_cancelled,
        nodes.len() as u64,
        "every speculation reconciled: {cs:?}"
    );
}
