//! Parallel/sequential equivalence across protocols: the streamed
//! parallel engine must produce the *identical* violation set and the
//! identical canonical shallowest counterexample path as the sequential
//! engine — for exhaustive search (Fig. 5) and consequence prediction
//! (Fig. 8) alike, at any worker count. Scheduling may only affect
//! wall-clock numbers.
//!
//! The CI determinism matrix drives these tests through an env loop:
//! `CB_EQ_WORKERS` (comma list, default `1,4`) selects the worker counts
//! every scenario is checked at, `CB_MERGE_SHARDS` (comma list, default
//! `1,2`) the merge-shard counts crossed with them, and `CB_EQ_SEED`
//! (default `1213`) picks the churned live state the seeded scenario
//! starts from.

use cb_bench::scenarios;
use crystalball_suite::mc::{
    find_consequences, find_consequences_parallel, find_errors, find_errors_parallel,
    ParallelConfig, SearchConfig, SearchOutcome,
};
use crystalball_suite::model::Protocol;
use crystalball_suite::protocols::paxos::{self, PaxosBugs};
use crystalball_suite::protocols::randtree::{self, RandTreeBugs};

/// Everything content-level a search produces: every violation with its
/// full rendered path, plus the visit accounting.
fn fingerprint<P: Protocol>(out: &SearchOutcome<P>) -> (Vec<String>, Vec<usize>, usize, usize) {
    (
        out.violations.iter().map(|v| v.scenario()).collect(),
        out.violations.iter().map(|v| v.depth).collect(),
        out.stats.states_visited,
        out.stats.states_enqueued,
    )
}

fn assert_engines_agree<P: Protocol>(
    proto: &P,
    props: &cb_model::PropertySet<P>,
    gs: &cb_model::GlobalState<P>,
    config: SearchConfig,
    what: &str,
) {
    let seq_bfs = find_errors(proto, props, gs, config.clone());
    let seq_cp = find_consequences(proto, props, gs, config.clone());
    for workers in cb_bench::matrix::workers() {
        for merge_shards in cb_bench::matrix::merge_shards() {
            if workers == 1 && merge_shards != 1 {
                // The fused 1-worker path has no merge to shard; skip the
                // redundant legs.
                continue;
            }
            let par = ParallelConfig {
                workers,
                merge_shards,
                ..ParallelConfig::default()
            };
            let par_bfs = find_errors_parallel(proto, props, gs, config.clone(), &par);
            assert_eq!(
                fingerprint(&seq_bfs),
                fingerprint(&par_bfs),
                "{what}: exhaustive search diverged at {workers} workers / {merge_shards} shards"
            );
            assert_eq!(
                seq_bfs.stopped, par_bfs.stopped,
                "{what}: stop reason (bfs, {workers}w/{merge_shards}s)"
            );
            let par_cp = find_consequences_parallel(proto, props, gs, config.clone(), &par);
            assert_eq!(
                fingerprint(&seq_cp),
                fingerprint(&par_cp),
                "{what}: consequence prediction diverged at {workers} workers / {merge_shards} shards"
            );
            assert_eq!(
                seq_cp.stopped, par_cp.stopped,
                "{what}: stop reason (cp, {workers}w/{merge_shards}s)"
            );
            assert_eq!(
                seq_cp.stats.local_prunes, par_cp.stats.local_prunes,
                "{what}: localExplored pruning count ({workers}w/{merge_shards}s)"
            );
        }
    }
}

/// RandTree from the Fig. 2 live state, buggy: a violation exists within
/// the depth budget, so this checks the canonical shallowest path.
#[test]
fn randtree_buggy_violation_paths_match() {
    let (proto, gs) = scenarios::randtree_fig2(RandTreeBugs::only("R1"));
    let props = randtree::properties::all();
    let config = SearchConfig {
        max_depth: Some(5),
        max_states: Some(60_000),
        max_violations: 3,
        ..SearchConfig::default()
    };
    let seq = find_consequences(&proto, &props, &gs, config.clone());
    assert!(!seq.is_clean(), "the R1 bug is predictable from Fig. 2");
    assert_engines_agree(&proto, &props, &gs, config, "randtree/R1");
}

/// RandTree, fixed protocol: no violations — checks that clean exhaustion
/// (visit counts, enqueue counts, stop reason) also matches.
#[test]
fn randtree_clean_exhaustion_matches() {
    let (proto, gs) = scenarios::randtree_fig2(RandTreeBugs::none());
    let props = randtree::properties::all();
    let config = SearchConfig {
        max_depth: Some(4),
        max_states: Some(200_000),
        ..SearchConfig::default()
    };
    assert_engines_agree(&proto, &props, &gs, config, "randtree/fixed");
}

/// Paxos from the round-1 live state (value chosen on {A,B} while C was
/// partitioned) with the P2 bug armed — the Fig. 14 prediction scenario.
#[test]
fn paxos_buggy_violation_paths_match() {
    let (proto, gs) = scenarios::paxos_round1(PaxosBugs::only("P2"));
    let props = paxos::properties::all();
    let config = SearchConfig {
        max_depth: Some(5),
        max_states: Some(25_000),
        ..SearchConfig::default()
    };
    assert_engines_agree(&proto, &props, &gs, config, "paxos/P2");
}

/// Regression: a Paxos state whose counterexample crosses *commuting
/// deliveries* — two in-flight messages whose delivery order reaches the
/// same state hash through differently-ordered in-flight bags. The
/// surviving clone after the explored-set race must be the canonical
/// edge's (re-derived if a non-canonical worker won), or the reported
/// path (and all downstream enumeration) silently depends on thread
/// scheduling. Repeated runs make the race likely to land both ways.
#[test]
fn paxos_commuting_deliveries_keep_canonical_paths() {
    let (proto, gs) = scenarios::paxos_near_violation(PaxosBugs::only("P1"));
    let props = paxos::properties::all();
    let config = SearchConfig {
        max_depth: Some(7),
        max_states: Some(30_000),
        explore: cb_model::ExploreOptions::minimal(),
        ..SearchConfig::default()
    };
    let seq = find_consequences(&proto, &props, &gs, config.clone());
    assert!(!seq.is_clean(), "the double choice is in reach");
    for run in 0..8 {
        let par = find_consequences_parallel(
            &proto,
            &props,
            &gs,
            config.clone(),
            &ParallelConfig {
                workers: 4,
                ..ParallelConfig::default()
            },
        );
        assert_eq!(
            fingerprint(&seq),
            fingerprint(&par),
            "paxos/commuting: parallel diverged from sequential (run {run})"
        );
    }
}

/// The seeded determinism-matrix leg: a RandTree neighborhood that lived
/// through `CB_EQ_SEED`-driven churn under the real simulator — joins,
/// resets, in-flight traffic at capture time — re-proving equivalence
/// from a different live state per seed at every `CB_EQ_WORKERS` count.
#[test]
fn randtree_churned_matrix_matches() {
    let seed = cb_bench::matrix::seed();
    let (proto, gs) = scenarios::randtree_churned(seed, RandTreeBugs::as_shipped());
    let props = randtree::properties::all();
    let config = SearchConfig {
        max_depth: Some(6),
        max_states: Some(30_000),
        max_violations: 3,
        ..SearchConfig::default()
    };
    assert_engines_agree(
        &proto,
        &props,
        &gs,
        config,
        &format!("randtree/churn-{seed}"),
    );
}

/// Paxos, fixed: consensus holds everywhere the budget reaches.
#[test]
fn paxos_clean_exhaustion_matches() {
    let (proto, gs) = scenarios::paxos_round1(PaxosBugs::none());
    let props = paxos::properties::all();
    let config = SearchConfig {
        max_depth: Some(5),
        max_states: Some(100_000),
        ..SearchConfig::default()
    };
    assert_engines_agree(&proto, &props, &gs, config, "paxos/fixed");
}
